package data

import (
	"math"
	"testing"
	"testing/quick"

	"fedmigr/internal/stats"
	"fedmigr/internal/tensor"
)

func TestSyntheticShapesAndLabels(t *testing.T) {
	train, test := Synthetic(SyntheticConfig{Classes: 4, PerClass: 10, Seed: 1})
	if train.Len() != 40 {
		t.Fatalf("train len %d", train.Len())
	}
	if test.Len() != 4*2 {
		t.Fatalf("test len %d (default 1/5 per class)", test.Len())
	}
	c, h, w := train.Spec()
	if c != 3 || h != 8 || w != 8 {
		t.Fatalf("spec %d %d %d", c, h, w)
	}
	counts := make([]int, 4)
	for _, y := range train.Y {
		if y < 0 || y >= 4 {
			t.Fatalf("label %d out of range", y)
		}
		counts[y]++
	}
	for l, n := range counts {
		if n != 10 {
			t.Fatalf("class %d has %d samples, want 10", l, n)
		}
	}
}

func TestSyntheticDeterminism(t *testing.T) {
	a, _ := Synthetic(SyntheticConfig{Classes: 3, PerClass: 5, Seed: 42})
	b, _ := Synthetic(SyntheticConfig{Classes: 3, PerClass: 5, Seed: 42})
	for i := range a.X.Data() {
		if a.X.Data()[i] != b.X.Data()[i] {
			t.Fatal("same seed must give same data")
		}
	}
	c, _ := Synthetic(SyntheticConfig{Classes: 3, PerClass: 5, Seed: 43})
	diff := false
	for i := range a.X.Data() {
		if a.X.Data()[i] != c.X.Data()[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds should give different data")
	}
}

func TestSyntheticClassesSeparated(t *testing.T) {
	// Class means should be far apart relative to within-class noise, so a
	// nearest-prototype classifier gets high accuracy — i.e. learnable.
	train, test := Synthetic(SyntheticConfig{Classes: 5, PerClass: 40, Noise: 0.5, Seed: 7})
	c, h, w := train.Spec()
	dim := c * h * w
	means := make([][]float64, 5)
	counts := make([]int, 5)
	for i := range means {
		means[i] = make([]float64, dim)
	}
	for i, y := range train.Y {
		row := train.X.Data()[i*dim : (i+1)*dim]
		for j, v := range row {
			means[y][j] += v
		}
		counts[y]++
	}
	for l := range means {
		for j := range means[l] {
			means[l][j] /= float64(counts[l])
		}
	}
	correct := 0
	for i, y := range test.Y {
		row := test.X.Data()[i*dim : (i+1)*dim]
		best, bl := math.Inf(1), -1
		for l := range means {
			d := 0.0
			for j, v := range row {
				dv := v - means[l][j]
				d += dv * dv
			}
			if d < best {
				best, bl = d, l
			}
		}
		if bl == y {
			correct++
		}
	}
	acc := float64(correct) / float64(test.Len())
	if acc < 0.95 {
		t.Fatalf("nearest-prototype accuracy %v — classes not separable", acc)
	}
}

func TestSubsetIndependent(t *testing.T) {
	d, _ := Synthetic(SyntheticConfig{Classes: 2, PerClass: 4, Seed: 2})
	s := d.Subset([]int{0, 1})
	s.X.Data()[0] = 999
	if d.X.Data()[0] == 999 {
		t.Fatal("Subset must copy data")
	}
}

func TestBatch(t *testing.T) {
	d, _ := Synthetic(SyntheticConfig{Classes: 2, PerClass: 4, Seed: 3})
	x, y := d.Batch(2, 5)
	if x.Dim(0) != 3 || len(y) != 3 {
		t.Fatalf("batch sizes %v %d", x.Shape(), len(y))
	}
	if x.At(0, 0, 0, 0) != d.X.At(2, 0, 0, 0) {
		t.Fatal("batch content mismatch")
	}
}

func TestBatchPanicsOnBadRange(t *testing.T) {
	d, _ := Synthetic(SyntheticConfig{Classes: 2, PerClass: 2, Seed: 4})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.Batch(3, 2)
}

func TestShufflePreservesPairs(t *testing.T) {
	d, _ := Synthetic(SyntheticConfig{Classes: 3, PerClass: 6, Noise: 0.1, Seed: 5})
	// Record (first pixel → label) association per sample before shuffling.
	c, h, w := d.Spec()
	dim := c * h * w
	type pair struct {
		px float64
		y  int
	}
	before := make(map[float64]int, d.Len())
	for i := 0; i < d.Len(); i++ {
		before[d.X.Data()[i*dim]] = d.Y[i]
	}
	d.Shuffle(tensor.NewRNG(6))
	for i := 0; i < d.Len(); i++ {
		if y, ok := before[d.X.Data()[i*dim]]; !ok || y != d.Y[i] {
			t.Fatal("shuffle broke sample/label pairing")
		}
	}
	_ = pair{}
}

func TestPartitionIIDBalanced(t *testing.T) {
	d, _ := Synthetic(SyntheticConfig{Classes: 10, PerClass: 50, Seed: 8})
	parts := PartitionIID(d, 5, tensor.NewRNG(1))
	if len(parts) != 5 {
		t.Fatalf("got %d parts", len(parts))
	}
	total := 0
	pop := d.LabelDistribution()
	for _, p := range parts {
		total += p.Len()
		if p.Len() != 100 {
			t.Fatalf("uneven IID part: %d", p.Len())
		}
		if emd := stats.EMD(p.LabelDistribution(), pop); emd > 0.5 {
			t.Fatalf("IID partition EMD too high: %v", emd)
		}
	}
	if total != d.Len() {
		t.Fatalf("partition lost samples: %d vs %d", total, d.Len())
	}
}

func TestPartitionShardsOneClassPerClient(t *testing.T) {
	d, _ := Synthetic(SyntheticConfig{Classes: 10, PerClass: 30, Seed: 9})
	parts := PartitionShards(d, 10, 1, tensor.NewRNG(2))
	for i, p := range parts {
		dist := p.LabelDistribution()
		nonzero := 0
		for _, v := range dist {
			if v > 0 {
				nonzero++
			}
		}
		// One shard = one contiguous label range; with perClass*classes
		// divisible by shards, each client sees exactly one class.
		if nonzero > 2 {
			t.Fatalf("client %d holds %d classes, want ≤2 (shard boundary)", i, nonzero)
		}
	}
}

func TestPartitionShardsFiveClasses(t *testing.T) {
	d, _ := Synthetic(SyntheticConfig{Classes: 100, PerClass: 5, Seed: 10})
	parts := PartitionShards(d, 20, 5, tensor.NewRNG(3))
	total := 0
	for _, p := range parts {
		total += p.Len()
	}
	if total != d.Len() {
		t.Fatalf("shards lost samples: %d vs %d", total, d.Len())
	}
}

func TestPartitionDominanceLevels(t *testing.T) {
	d, _ := Synthetic(SyntheticConfig{Classes: 10, PerClass: 100, Seed: 11})
	pop := d.LabelDistribution()
	prev := -1.0
	for _, p := range []float64{0.1, 0.4, 0.8} {
		parts := PartitionDominance(d, 10, p, tensor.NewRNG(4))
		var worst float64
		for _, part := range parts {
			if e := stats.EMD(part.LabelDistribution(), pop); e > worst {
				worst = e
			}
		}
		if worst < prev {
			t.Fatalf("dominance level %v should be at least as non-IID as lower levels (%v < %v)", p, worst, prev)
		}
		prev = worst
	}
}

func TestPartitionDominanceConservesSamples(t *testing.T) {
	f := func(seed int64) bool {
		d, _ := Synthetic(SyntheticConfig{Classes: 5, PerClass: 20, Seed: seed})
		parts := PartitionDominance(d, 4, 0.6, tensor.NewRNG(seed))
		total := 0
		for _, p := range parts {
			total += p.Len()
		}
		return total == d.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionLANCorrelated(t *testing.T) {
	d, _ := Synthetic(SyntheticConfig{Classes: 9, PerClass: 30, Seed: 12})
	lanOf := []int{0, 0, 0, 1, 1, 1, 2, 2, 2}
	parts := PartitionLANCorrelated(d, lanOf, tensor.NewRNG(5))
	if len(parts) != 9 {
		t.Fatalf("got %d parts", len(parts))
	}
	// Clients in the same LAN should have near-identical distributions;
	// clients in different LANs should differ substantially.
	same := stats.EMD(parts[0].LabelDistribution(), parts[1].LabelDistribution())
	diff := stats.EMD(parts[0].LabelDistribution(), parts[3].LabelDistribution())
	if same >= diff {
		t.Fatalf("intra-LAN EMD %v should be below cross-LAN EMD %v", same, diff)
	}
	total := 0
	for _, p := range parts {
		total += p.Len()
	}
	if total != d.Len() {
		t.Fatalf("LAN partition lost samples: %d vs %d", total, d.Len())
	}
}

func TestNamedDatasets(t *testing.T) {
	c10, _ := C10Syn(5, 1)
	if c10.Classes != 10 {
		t.Fatalf("C10Syn classes %d", c10.Classes)
	}
	c100, _ := C100Syn(2, 1)
	if c100.Classes != 100 {
		t.Fatalf("C100Syn classes %d", c100.Classes)
	}
	inet, _ := INet100Syn(2, 1)
	if inet.Classes != 100 {
		t.Fatalf("INet100Syn classes %d", inet.Classes)
	}
	if _, h, _ := inet.Spec(); h != 10 {
		t.Fatalf("INet100Syn height %d", h)
	}
}

func TestPartitionPanics(t *testing.T) {
	d, _ := Synthetic(SyntheticConfig{Classes: 2, PerClass: 2, Seed: 1})
	for name, fn := range map[string]func(){
		"iid k=0":      func() { PartitionIID(d, 0, tensor.NewRNG(1)) },
		"shards k=0":   func() { PartitionShards(d, 0, 1, tensor.NewRNG(1)) },
		"dominance p":  func() { PartitionDominance(d, 2, 0, tensor.NewRNG(1)) },
		"dominance p2": func() { PartitionDominance(d, 2, 1.5, tensor.NewRNG(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestPartitionReplicated(t *testing.T) {
	d, _ := Synthetic(SyntheticConfig{Classes: 4, PerClass: 8, Seed: 5})
	const k, shards = 1000, 4
	parts := PartitionReplicated(d, k, shards, tensor.NewRNG(9))
	if len(parts) != k {
		t.Fatalf("got %d parts, want %d", len(parts), k)
	}
	total := 0
	for s := 0; s < shards; s++ {
		total += parts[s].Len()
	}
	if total != d.Len() {
		t.Fatalf("shard pool covers %d samples, want %d", total, d.Len())
	}
	// Clients beyond the pool alias the pool's storage, not copies.
	for i := shards; i < k; i++ {
		a, b := parts[i], parts[i%shards]
		if &a.X.Data()[0] != &b.X.Data()[0] || a.Len() != b.Len() {
			t.Fatalf("client %d does not alias shard %d", i, i%shards)
		}
	}
	// shards > k clamps; every client still gets a non-empty dataset.
	small := PartitionReplicated(d, 2, 16, tensor.NewRNG(9))
	if len(small) != 2 || small[0].Len() == 0 || small[1].Len() == 0 {
		t.Fatalf("clamped replicate gave bad parts")
	}
}
