package tensor

import (
	"fmt"
	"math"
	"testing"

	"fedmigr/internal/sched"
)

func randTensor(g *RNG, shape ...int) *Tensor {
	t := New(shape...)
	d := t.Data()
	for i := range d {
		d[i] = g.NormFloat64()
	}
	return t
}

func withPool(workers int, fn func()) {
	prev := InstallPool(sched.New(workers))
	defer InstallPool(prev)
	fn()
}

// requireBitEqual fails unless a and b match bit for bit — tolerance-free:
// the determinism contract promises identical floats, not close ones.
func requireBitEqual(t *testing.T, name string, serial, parallel *Tensor) {
	t.Helper()
	if !serial.SameShape(parallel) {
		t.Fatalf("%s: shape %v vs %v", name, serial.Shape(), parallel.Shape())
	}
	sd, pd := serial.Data(), parallel.Data()
	for i := range sd {
		if math.Float64bits(sd[i]) != math.Float64bits(pd[i]) {
			t.Fatalf("%s: element %d differs: %v (serial) vs %v (parallel)",
				name, i, sd[i], pd[i])
		}
	}
}

var parityWorkers = []int{2, 3, 8}

// TestMatMulParity checks every matmul variant across shapes spanning the
// serial-fallback threshold: parallel results must be bit-identical.
func TestMatMulParity(t *testing.T) {
	shapes := []struct{ m, k, n int }{
		{1, 1, 1}, {3, 5, 2}, {17, 9, 13}, // below threshold: serial path
		{64, 64, 64}, {50, 200, 30}, {129, 65, 33}, // above: parallel path
	}
	for _, s := range shapes {
		g := NewRNG(42)
		a := randTensor(g, s.m, s.k)
		bm := randTensor(g, s.k, s.n)
		at := randTensor(g, s.k, s.m) // for MatMulTransA: (k, m)
		bt := randTensor(g, s.n, s.k) // for MatMulTransB: (n, k)
		// Sparsity matters: the kernels skip av == 0 terms, and the skip
		// must behave identically in both paths (0.0 + -0.0 pitfalls).
		a.Data()[0] = 0
		at.Data()[0] = 0
		mm := MatMul(a, bm)
		ma := MatMulTransA(at, bm)
		mb := MatMulTransB(a, bt)
		for _, w := range parityWorkers {
			withPool(w, func() {
				requireBitEqual(t, "MatMul", mm, MatMul(a, bm))
				requireBitEqual(t, "MatMulTransA", ma, MatMulTransA(at, bm))
				requireBitEqual(t, "MatMulTransB", mb, MatMulTransB(a, bt))
			})
		}
	}
}

func TestConvKernelParity(t *testing.T) {
	cases := []struct {
		n, c, h, w int
		p          ConvParams
	}{
		{1, 1, 4, 4, ConvParams{KernelH: 2, KernelW: 2, StrideH: 1, StrideW: 1}},
		{2, 3, 8, 8, ConvParams{KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}},
		{4, 3, 10, 10, ConvParams{KernelH: 3, KernelW: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1}},
		{8, 4, 9, 7, ConvParams{KernelH: 3, KernelW: 2, StrideH: 1, StrideW: 2}},
	}
	for _, tc := range cases {
		g := NewRNG(7)
		x := randTensor(g, tc.n, tc.c, tc.h, tc.w)
		oh, ow := tc.p.OutSize(tc.h, tc.w)
		colW := tc.c * tc.p.KernelH * tc.p.KernelW
		cols := randTensor(g, tc.n*oh*ow, colW)
		f := 5
		k := randTensor(g, f, tc.c, tc.p.KernelH, tc.p.KernelW)
		bias := randTensor(g, f)

		im := Im2Col(x, tc.p)
		c2i := Col2Im(cols, tc.n, tc.c, tc.h, tc.w, tc.p)
		conv := Conv2D(x, k, bias, tc.p)
		for _, w := range parityWorkers {
			withPool(w, func() {
				requireBitEqual(t, "Im2Col", im, Im2Col(x, tc.p))
				requireBitEqual(t, "Col2Im", c2i, Col2Im(cols, tc.n, tc.c, tc.h, tc.w, tc.p))
				requireBitEqual(t, "Conv2D", conv, Conv2D(x, k, bias, tc.p))
			})
		}
	}
}

func TestMaxPoolParity(t *testing.T) {
	cases := []struct {
		n, c, h, w int
		p          ConvParams
	}{
		{2, 3, 8, 8, ConvParams{KernelH: 2, KernelW: 2, StrideH: 2, StrideW: 2}},
		{4, 2, 9, 9, ConvParams{KernelH: 3, KernelW: 3, StrideH: 2, StrideW: 2}},
		{16, 8, 8, 8, ConvParams{KernelH: 2, KernelW: 2, StrideH: 2, StrideW: 2}},
	}
	for _, tc := range cases {
		g := NewRNG(11)
		x := randTensor(g, tc.n, tc.c, tc.h, tc.w)
		out, arg := MaxPool2D(x, tc.p)
		grad := randTensor(g, out.Shape()...)
		back := MaxPool2DBackward(grad, arg, x.Shape())
		for _, w := range parityWorkers {
			withPool(w, func() {
				pout, parg := MaxPool2D(x, tc.p)
				requireBitEqual(t, "MaxPool2D", out, pout)
				for i := range arg {
					if arg[i] != parg[i] {
						t.Fatalf("MaxPool2D argmax %d differs: %d vs %d", i, arg[i], parg[i])
					}
				}
				requireBitEqual(t, "MaxPool2DBackward", back, MaxPool2DBackward(grad, arg, x.Shape()))
			})
		}
	}
}

// TestScratchRoundTrip exercises the arena-backed scratch tensors: recycled
// buffers must come back zeroed with the right geometry.
func TestScratchRoundTrip(t *testing.T) {
	s := GetScratch(4, 8)
	if s.Dim(0) != 4 || s.Dim(1) != 8 || s.Size() != 32 {
		t.Fatalf("GetScratch geometry: %v", s.Shape())
	}
	for i := range s.Data() {
		s.Data()[i] = 3
	}
	PutScratch(s)
	s2 := GetScratch(4, 8)
	for i, v := range s2.Data() {
		if v != 0 {
			t.Fatalf("recycled scratch dirty at %d: %v", i, v)
		}
	}
	PutScratch(s2)
	PutScratch(nil) // must be a no-op
}

func benchPool(b *testing.B, workers int) {
	b.Helper()
	prev := InstallPool(sched.New(workers))
	b.Cleanup(func() { InstallPool(prev) })
}

func BenchmarkMatMul(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(benchName(workers), func(b *testing.B) {
			benchPool(b, workers)
			g := NewRNG(1)
			x := randTensor(g, 128, 256)
			y := randTensor(g, 256, 128)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MatMul(x, y)
			}
		})
	}
}

func BenchmarkConv2D(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(benchName(workers), func(b *testing.B) {
			benchPool(b, workers)
			g := NewRNG(1)
			p := ConvParams{KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
			x := randTensor(g, 32, 3, 8, 8)
			k := randTensor(g, 16, 3, 3, 3)
			bias := randTensor(g, 16)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Conv2D(x, k, bias, p)
			}
		})
	}
}

func benchName(workers int) string {
	return fmt.Sprintf("workers=%d", workers)
}
