package tensor

import (
	"math"
	"testing"
)

func TestConvParamsOutSize(t *testing.T) {
	p := ConvParams{KernelH: 5, KernelW: 5, StrideH: 1, StrideW: 1, PadH: 2, PadW: 2}
	oh, ow := p.OutSize(32, 32)
	if oh != 32 || ow != 32 {
		t.Fatalf("same-padding 5x5 on 32x32 gave %dx%d", oh, ow)
	}
	p2 := ConvParams{KernelH: 2, KernelW: 2, StrideH: 2, StrideW: 2}
	oh, ow = p2.OutSize(8, 8)
	if oh != 4 || ow != 4 {
		t.Fatalf("2x2/s2 pooling on 8x8 gave %dx%d", oh, ow)
	}
}

func TestIm2ColIdentityKernel(t *testing.T) {
	// 1x1 kernel, stride 1: Im2Col should reproduce the input, one pixel per row.
	x := FromSlice([]float64{1, 2, 3, 4}, 1, 1, 2, 2)
	p := ConvParams{KernelH: 1, KernelW: 1, StrideH: 1, StrideW: 1}
	cols := Im2Col(x, p)
	if cols.Dim(0) != 4 || cols.Dim(1) != 1 {
		t.Fatalf("cols shape %v", cols.Shape())
	}
	for i, w := range []float64{1, 2, 3, 4} {
		if cols.At(i, 0) != w {
			t.Fatalf("cols[%d]=%v want %v", i, cols.At(i, 0), w)
		}
	}
}

func TestConv2DKnownValues(t *testing.T) {
	// Input 1x1x3x3 = 1..9, kernel 1x1x2x2 of ones, no pad, stride 1.
	x := FromSlice([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9}, 1, 1, 3, 3)
	k := FromSlice([]float64{1, 1, 1, 1}, 1, 1, 2, 2)
	p := ConvParams{KernelH: 2, KernelW: 2, StrideH: 1, StrideW: 1}
	y := Conv2D(x, k, nil, p)
	want := []float64{12, 16, 24, 28} // window sums
	for i, w := range want {
		if y.Data()[i] != w {
			t.Fatalf("conv[%d]=%v want %v", i, y.Data()[i], w)
		}
	}
}

func TestConv2DBias(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4}, 1, 1, 2, 2)
	k := FromSlice([]float64{1}, 1, 1, 1, 1)
	b := FromSlice([]float64{10}, 1)
	p := ConvParams{KernelH: 1, KernelW: 1, StrideH: 1, StrideW: 1}
	y := Conv2D(x, k, b, p)
	if y.Data()[0] != 11 || y.Data()[3] != 14 {
		t.Fatalf("bias not applied: %v", y.Data())
	}
}

func TestConv2DPaddingZeros(t *testing.T) {
	// With pad 1 and a 3x3 ones kernel on a 1x1 input, result = single input value.
	x := FromSlice([]float64{5}, 1, 1, 1, 1)
	k := Ones(1, 1, 3, 3)
	p := ConvParams{KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	y := Conv2D(x, k, nil, p)
	if y.Size() != 1 || y.Data()[0] != 5 {
		t.Fatalf("padded conv got %v", y.Data())
	}
}

func TestConv2DMultiChannelMultiFilter(t *testing.T) {
	g := NewRNG(11)
	x := Randn(g, 1, 2, 3, 4, 4)
	k := Randn(g, 1, 5, 3, 3, 3)
	p := ConvParams{KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	y := Conv2D(x, k, nil, p)
	sh := y.Shape()
	if sh[0] != 2 || sh[1] != 5 || sh[2] != 4 || sh[3] != 4 {
		t.Fatalf("conv output shape %v", sh)
	}
	// Cross-check one output element against a direct loop.
	ni, fi, oy, ox := 1, 2, 1, 3
	direct := 0.0
	for ci := 0; ci < 3; ci++ {
		for ky := 0; ky < 3; ky++ {
			for kx := 0; kx < 3; kx++ {
				iy, ix := oy-1+ky, ox-1+kx
				if iy < 0 || iy >= 4 || ix < 0 || ix >= 4 {
					continue
				}
				direct += x.At(ni, ci, iy, ix) * k.At(fi, ci, ky, kx)
			}
		}
	}
	if math.Abs(direct-y.At(ni, fi, oy, ox)) > 1e-10 {
		t.Fatalf("conv disagrees with direct: %v vs %v", y.At(ni, fi, oy, ox), direct)
	}
}

func TestCol2ImAdjointOfIm2Col(t *testing.T) {
	// <Im2Col(x), C> == <x, Col2Im(C)> — the defining adjoint property used
	// by the convolution backward pass.
	g := NewRNG(13)
	x := Randn(g, 1, 2, 2, 5, 5)
	p := ConvParams{KernelH: 3, KernelW: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1}
	cols := Im2Col(x, p)
	c := Randn(g, 1, cols.Dim(0), cols.Dim(1))
	lhs := cols.Dot(c)
	back := Col2Im(c, 2, 2, 5, 5, p)
	rhs := x.Dot(back)
	if math.Abs(lhs-rhs) > 1e-9*(1+math.Abs(lhs)) {
		t.Fatalf("adjoint mismatch: %v vs %v", lhs, rhs)
	}
}

func TestMaxPool2DValuesAndIndices(t *testing.T) {
	x := FromSlice([]float64{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 1, 4, 4)
	p := ConvParams{KernelH: 2, KernelW: 2, StrideH: 2, StrideW: 2}
	y, arg := MaxPool2D(x, p)
	want := []float64{6, 8, 14, 16}
	for i, w := range want {
		if y.Data()[i] != w {
			t.Fatalf("pool[%d]=%v want %v", i, y.Data()[i], w)
		}
	}
	// Gradient routing: each pooled cell's grad lands on its argmax.
	g := FromSlice([]float64{1, 2, 3, 4}, 1, 1, 2, 2)
	dx := MaxPool2DBackward(g, arg, x.Shape())
	if dx.At(0, 0, 1, 1) != 1 || dx.At(0, 0, 3, 3) != 4 {
		t.Fatalf("pool backward misrouted: %v", dx.Data())
	}
	if dx.Sum() != 10 {
		t.Fatalf("pool backward must conserve gradient mass, sum=%v", dx.Sum())
	}
}

func TestMaxPool2DOverlapping(t *testing.T) {
	// 3x3 window stride 2 like AlexNet-style pooling: check output size.
	x := New(1, 1, 7, 7)
	p := ConvParams{KernelH: 3, KernelW: 3, StrideH: 2, StrideW: 2}
	y, _ := MaxPool2D(x, p)
	if y.Dim(2) != 3 || y.Dim(3) != 3 {
		t.Fatalf("overlapping pool shape %v", y.Shape())
	}
}

func TestIm2ColPanicsOnBadRank(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-NCHW input")
		}
	}()
	Im2Col(New(3, 3), ConvParams{KernelH: 1, KernelW: 1, StrideH: 1, StrideW: 1})
}

func TestConvParamsValidate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero stride")
		}
	}()
	Im2Col(New(1, 1, 2, 2), ConvParams{KernelH: 1, KernelW: 1})
}
