package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

// Property: (A·B)ᵀ == Bᵀ·Aᵀ.
func TestMatMulTransposeIdentity(t *testing.T) {
	f := func(seed int64) bool {
		g := NewRNG(seed)
		m, k, n := 1+g.Intn(5), 1+g.Intn(5), 1+g.Intn(5)
		a := Randn(g, 1, m, k)
		b := Randn(g, 1, k, n)
		lhs := MatMul(a, b).Transpose()
		rhs := MatMul(b.Transpose(), a.Transpose())
		for i := range lhs.Data() {
			if math.Abs(lhs.Data()[i]-rhs.Data()[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Reshape preserves the element sum (it's a view).
func TestReshapePreservesSum(t *testing.T) {
	f := func(seed int64) bool {
		g := NewRNG(seed)
		a := Randn(g, 1, 2, 3, 4)
		return math.Abs(a.Sum()-a.Reshape(4, 6).Sum()) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: identity matrix is a left and right unit for MatMul.
func TestMatMulIdentityUnit(t *testing.T) {
	eye := func(n int) *Tensor {
		e := New(n, n)
		for i := 0; i < n; i++ {
			e.Set(1, i, i)
		}
		return e
	}
	f := func(seed int64) bool {
		g := NewRNG(seed)
		n := 1 + g.Intn(6)
		a := Randn(g, 1, n, n)
		l := MatMul(eye(n), a)
		r := MatMul(a, eye(n))
		for i := range a.Data() {
			if math.Abs(l.Data()[i]-a.Data()[i]) > 1e-12 || math.Abs(r.Data()[i]-a.Data()[i]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: AddInPlace then SubInPlace restores the original tensor.
func TestAddSubInverse(t *testing.T) {
	f := func(seed int64) bool {
		g := NewRNG(seed)
		a := Randn(g, 1, 3, 5)
		b := Randn(g, 1, 3, 5)
		orig := a.Clone()
		a.AddInPlace(b).SubInPlace(b)
		for i := range a.Data() {
			if math.Abs(a.Data()[i]-orig.Data()[i]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: conv with a centered delta kernel is the identity.
func TestConvDeltaKernelIdentity(t *testing.T) {
	f := func(seed int64) bool {
		g := NewRNG(seed)
		x := Randn(g, 1, 1, 1, 5, 5)
		k := New(1, 1, 3, 3)
		k.Set(1, 0, 0, 1, 1)
		p := ConvParams{KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
		y := Conv2D(x, k, nil, p)
		for i := range x.Data() {
			if math.Abs(x.Data()[i]-y.Data()[i]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: MaxPool output dominates AvgPool-equivalent sums elementwise:
// pooled max ≥ window mean.
func TestMaxPoolDominatesMean(t *testing.T) {
	f := func(seed int64) bool {
		g := NewRNG(seed)
		x := Randn(g, 1, 1, 1, 4, 4)
		p := ConvParams{KernelH: 2, KernelW: 2, StrideH: 2, StrideW: 2}
		mx, _ := MaxPool2D(x, p)
		// window means
		for oy := 0; oy < 2; oy++ {
			for ox := 0; ox < 2; ox++ {
				sum := 0.0
				for ky := 0; ky < 2; ky++ {
					for kx := 0; kx < 2; kx++ {
						sum += x.At(0, 0, oy*2+ky, ox*2+kx)
					}
				}
				if mx.At(0, 0, oy, ox) < sum/4-1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
