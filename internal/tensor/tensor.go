// Package tensor implements dense row-major float64 tensors and the
// numerical kernels (matrix multiply, convolution, pooling, elementwise
// arithmetic, reductions) that the nn package builds neural networks on.
//
// The package is deliberately small and allocation-conscious: every shape
// is a plain []int, data is a single contiguous []float64, and all kernels
// are written against flat indices so they stay fast on a single core.
package tensor

import (
	"fmt"
	"math"
	"strings"
)

// Tensor is a dense row-major array of float64 values.
//
// The zero value is an empty tensor; use New, Zeros, or FromSlice to build
// usable tensors. Data is shared on plain assignment; use Clone for a deep
// copy.
type Tensor struct {
	shape []int
	data  []float64
}

// New returns a zero-filled tensor with the given shape.
// It panics if any dimension is negative.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	return &Tensor{shape: append([]int(nil), shape...), data: make([]float64, n)}
}

// Zeros is an alias for New, provided for readability at call sites.
func Zeros(shape ...int) *Tensor { return New(shape...) }

// Full returns a tensor of the given shape with every element set to v.
func Full(v float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = v
	}
	return t
}

// Ones returns a tensor of the given shape filled with 1.
func Ones(shape ...int) *Tensor { return Full(1, shape...) }

// FromSlice wraps data in a tensor with the given shape. The slice is used
// directly (not copied); it panics if len(data) does not match the shape.
func FromSlice(data []float64, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: shape %v needs %d elements, got %d", shape, n, len(data)))
	}
	return &Tensor{shape: append([]int(nil), shape...), data: data}
}

// Shape returns the tensor's dimensions. The returned slice must not be
// mutated by the caller.
func (t *Tensor) Shape() []int { return t.shape }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Size returns the total number of elements.
func (t *Tensor) Size() int { return len(t.data) }

// Data returns the underlying flat storage. Mutations are visible to every
// tensor sharing the storage.
func (t *Tensor) Data() []float64 { return t.data }

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float64 { return t.data[t.flat(idx)] }

// Set stores v at the given multi-index.
func (t *Tensor) Set(v float64, idx ...int) { t.data[t.flat(idx)] = v }

func (t *Tensor) flat(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index %v does not match rank-%d shape %v", idx, len(t.shape), t.shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.data, t.data)
	return c
}

// Reshape returns a tensor sharing t's storage with a new shape of the same
// total size. One dimension may be -1, in which case it is inferred.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	shape = append([]int(nil), shape...)
	infer, n := -1, 1
	for i, d := range shape {
		if d == -1 {
			if infer >= 0 {
				panic("tensor: at most one -1 dimension allowed in Reshape")
			}
			infer = i
			continue
		}
		n *= d
	}
	if infer >= 0 {
		if n == 0 || len(t.data)%n != 0 {
			panic(fmt.Sprintf("tensor: cannot infer dimension reshaping %v to %v", t.shape, shape))
		}
		shape[infer] = len(t.data) / n
		n *= shape[infer]
	}
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elems) to %v (%d elems)", t.shape, len(t.data), shape, n))
	}
	return &Tensor{shape: shape, data: t.data}
}

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.shape) != len(o.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != o.shape[i] {
			return false
		}
	}
	return true
}

// Fill sets every element of t to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.data {
		t.data[i] = v
	}
}

// Zero sets every element of t to 0.
func (t *Tensor) Zero() { t.Fill(0) }

// CopyFrom copies o's data into t. The shapes must match in total size.
func (t *Tensor) CopyFrom(o *Tensor) {
	if len(t.data) != len(o.data) {
		panic(fmt.Sprintf("tensor: CopyFrom size mismatch %v vs %v", t.shape, o.shape))
	}
	copy(t.data, o.data)
}

// String renders small tensors fully and large ones as a summary.
func (t *Tensor) String() string {
	if len(t.data) <= 16 {
		var b strings.Builder
		fmt.Fprintf(&b, "Tensor%v%v", t.shape, t.data)
		return b.String()
	}
	return fmt.Sprintf("Tensor%v[%d elems, mean=%.4g]", t.shape, len(t.data), t.Mean())
}

// --- elementwise arithmetic -------------------------------------------------

func (t *Tensor) check(o *Tensor, op string) {
	if len(t.data) != len(o.data) {
		panic(fmt.Sprintf("tensor: %s size mismatch %v vs %v", op, t.shape, o.shape))
	}
}

// AddInPlace adds o to t elementwise and returns t.
func (t *Tensor) AddInPlace(o *Tensor) *Tensor {
	t.check(o, "add")
	for i, v := range o.data {
		t.data[i] += v
	}
	return t
}

// SubInPlace subtracts o from t elementwise and returns t.
func (t *Tensor) SubInPlace(o *Tensor) *Tensor {
	t.check(o, "sub")
	for i, v := range o.data {
		t.data[i] -= v
	}
	return t
}

// MulInPlace multiplies t by o elementwise and returns t.
func (t *Tensor) MulInPlace(o *Tensor) *Tensor {
	t.check(o, "mul")
	for i, v := range o.data {
		t.data[i] *= v
	}
	return t
}

// ScaleInPlace multiplies every element of t by s and returns t.
func (t *Tensor) ScaleInPlace(s float64) *Tensor {
	for i := range t.data {
		t.data[i] *= s
	}
	return t
}

// AddScaledInPlace adds s*o to t elementwise (axpy) and returns t.
func (t *Tensor) AddScaledInPlace(o *Tensor, s float64) *Tensor {
	t.check(o, "addScaled")
	for i, v := range o.data {
		t.data[i] += s * v
	}
	return t
}

// Add returns t + o as a new tensor.
func (t *Tensor) Add(o *Tensor) *Tensor { return t.Clone().AddInPlace(o) }

// Sub returns t - o as a new tensor.
func (t *Tensor) Sub(o *Tensor) *Tensor { return t.Clone().SubInPlace(o) }

// Mul returns the elementwise product t ⊙ o as a new tensor.
func (t *Tensor) Mul(o *Tensor) *Tensor { return t.Clone().MulInPlace(o) }

// Scale returns s*t as a new tensor.
func (t *Tensor) Scale(s float64) *Tensor { return t.Clone().ScaleInPlace(s) }

// Apply replaces every element x of t with f(x) and returns t.
func (t *Tensor) Apply(f func(float64) float64) *Tensor {
	for i, v := range t.data {
		t.data[i] = f(v)
	}
	return t
}

// Map returns a new tensor with f applied to every element.
func (t *Tensor) Map(f func(float64) float64) *Tensor { return t.Clone().Apply(f) }

// --- reductions --------------------------------------------------------------

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements (0 for empty tensors).
func (t *Tensor) Mean() float64 {
	if len(t.data) == 0 {
		return 0
	}
	return t.Sum() / float64(len(t.data))
}

// Max returns the maximum element. It panics on an empty tensor.
func (t *Tensor) Max() float64 {
	if len(t.data) == 0 {
		panic("tensor: Max of empty tensor")
	}
	m := t.data[0]
	for _, v := range t.data[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the minimum element. It panics on an empty tensor.
func (t *Tensor) Min() float64 {
	if len(t.data) == 0 {
		panic("tensor: Min of empty tensor")
	}
	m := t.data[0]
	for _, v := range t.data[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// ArgMax returns the flat index of the maximum element.
func (t *Tensor) ArgMax() int {
	if len(t.data) == 0 {
		panic("tensor: ArgMax of empty tensor")
	}
	best, bi := t.data[0], 0
	for i, v := range t.data {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}

// Norm2 returns the Euclidean (L2) norm of the flattened tensor.
func (t *Tensor) Norm2() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Dot returns the inner product of the flattened tensors.
func (t *Tensor) Dot(o *Tensor) float64 {
	t.check(o, "dot")
	s := 0.0
	for i, v := range t.data {
		s += v * o.data[i]
	}
	return s
}

// --- matrix operations --------------------------------------------------------

// MatMul computes C = A·B for 2-D tensors A (m×k) and B (k×n).
func MatMul(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMul requires rank-2 tensors, got %v × %v", a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %v × %v", a.shape, b.shape))
	}
	c := New(m, n)
	// ikj loop order: streams B rows, good cache behaviour without blocking.
	// Output rows are independent, so the parallel split is over i with the
	// per-row accumulation order unchanged (bit-identical to serial).
	parFor(m, m*k*n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ar := a.data[i*k : (i+1)*k]
			cr := c.data[i*n : (i+1)*n]
			for p := 0; p < k; p++ {
				av := ar[p]
				if av == 0 {
					continue
				}
				br := b.data[p*n : (p+1)*n]
				for j, bv := range br {
					cr[j] += av * bv
				}
			}
		}
	})
	return c
}

// MatMulTransB computes C = A·Bᵀ for A (m×k) and B (n×k).
func MatMulTransB(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic("tensor: MatMulTransB requires rank-2 tensors")
	}
	m, k := a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransB inner dimension mismatch %v × %vᵀ", a.shape, b.shape))
	}
	c := New(m, n)
	parFor(m, m*k*n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ar := a.data[i*k : (i+1)*k]
			cr := c.data[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				br := b.data[j*k : (j+1)*k]
				s := 0.0
				for p, av := range ar {
					s += av * br[p]
				}
				cr[j] = s
			}
		}
	})
	return c
}

// MatMulTransA computes C = Aᵀ·B for A (k×m) and B (k×n).
func MatMulTransA(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic("tensor: MatMulTransA requires rank-2 tensors")
	}
	k, m := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransA inner dimension mismatch %vᵀ × %v", a.shape, b.shape))
	}
	c := New(m, n)
	// Output-row split: each row i accumulates over p in ascending order,
	// exactly the per-element order of the classic p-outer loop, so serial
	// and parallel paths agree bit-for-bit.
	parFor(m, m*k*n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			cr := c.data[i*n : (i+1)*n]
			for p := 0; p < k; p++ {
				av := a.data[p*m+i]
				if av == 0 {
					continue
				}
				br := b.data[p*n : (p+1)*n]
				for j, bv := range br {
					cr[j] += av * bv
				}
			}
		}
	})
	return c
}

// Transpose returns the transpose of a 2-D tensor as a new tensor.
func (t *Tensor) Transpose() *Tensor {
	if t.Rank() != 2 {
		panic("tensor: Transpose requires a rank-2 tensor")
	}
	m, n := t.shape[0], t.shape[1]
	o := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			o.data[j*m+i] = t.data[i*n+j]
		}
	}
	return o
}

// Row returns row i of a 2-D tensor as a view sharing storage.
func (t *Tensor) Row(i int) *Tensor {
	if t.Rank() != 2 {
		panic("tensor: Row requires a rank-2 tensor")
	}
	n := t.shape[1]
	return &Tensor{shape: []int{n}, data: t.data[i*n : (i+1)*n]}
}

// AddRowVector adds the length-n vector v to each row of the m×n tensor t.
func (t *Tensor) AddRowVector(v *Tensor) *Tensor {
	if t.Rank() != 2 || v.Size() != t.shape[1] {
		panic(fmt.Sprintf("tensor: AddRowVector shape mismatch %v + %v", t.shape, v.shape))
	}
	n := t.shape[1]
	for i := 0; i < t.shape[0]; i++ {
		row := t.data[i*n : (i+1)*n]
		for j, x := range v.data {
			row[j] += x
		}
	}
	return t
}

// SumRows returns the length-n column sums of an m×n tensor.
func (t *Tensor) SumRows() *Tensor {
	if t.Rank() != 2 {
		panic("tensor: SumRows requires a rank-2 tensor")
	}
	m, n := t.shape[0], t.shape[1]
	o := New(n)
	for i := 0; i < m; i++ {
		row := t.data[i*n : (i+1)*n]
		for j, x := range row {
			o.data[j] += x
		}
	}
	return o
}
