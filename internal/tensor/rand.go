package tensor

import (
	"math"
	"math/rand"
)

// RNG is a deterministic random source used throughout the repository so
// experiments are reproducible under a fixed seed. It wraps math/rand with
// a few distributions the NN and DRL code needs.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic generator seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Float64 returns a uniform sample in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform sample in [0, n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a non-negative pseudo-random 63-bit integer.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// NormFloat64 returns a standard normal sample.
func (g *RNG) NormFloat64() float64 { return g.r.NormFloat64() }

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// Fork returns a new RNG seeded from g's stream, so subsystems can draw
// independent deterministic streams from one master seed.
func (g *RNG) Fork() *RNG { return NewRNG(g.r.Int63()) }

// Randn returns a tensor with i.i.d. N(0, std²) entries.
func Randn(g *RNG, std float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = g.NormFloat64() * std
	}
	return t
}

// Uniform returns a tensor with i.i.d. Uniform(lo, hi) entries.
func Uniform(g *RNG, lo, hi float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = lo + (hi-lo)*g.Float64()
	}
	return t
}

// XavierUniform returns a tensor initialized with Glorot/Xavier uniform
// scaling for the given fan-in and fan-out.
func XavierUniform(g *RNG, fanIn, fanOut int, shape ...int) *Tensor {
	bound := math.Sqrt(6.0 / float64(fanIn+fanOut))
	return Uniform(g, -bound, bound, shape...)
}

// HeNormal returns a tensor initialized with He/Kaiming normal scaling for
// the given fan-in, appropriate for ReLU networks.
func HeNormal(g *RNG, fanIn int, shape ...int) *Tensor {
	return Randn(g, math.Sqrt(2.0/float64(fanIn)), shape...)
}
