package tensor

import (
	"fmt"

	"fedmigr/internal/sched"
)

// ConvParams describes a 2-D convolution or pooling geometry.
type ConvParams struct {
	KernelH, KernelW int
	StrideH, StrideW int
	PadH, PadW       int
}

// OutSize returns the output spatial size for an input of h×w.
func (p ConvParams) OutSize(h, w int) (oh, ow int) {
	oh = (h+2*p.PadH-p.KernelH)/p.StrideH + 1
	ow = (w+2*p.PadW-p.KernelW)/p.StrideW + 1
	return oh, ow
}

func (p ConvParams) validate() {
	if p.KernelH <= 0 || p.KernelW <= 0 || p.StrideH <= 0 || p.StrideW <= 0 || p.PadH < 0 || p.PadW < 0 {
		panic(fmt.Sprintf("tensor: invalid conv params %+v", p))
	}
}

// Im2Col unrolls an input of shape (N, C, H, W) into a matrix of shape
// (N*OH*OW, C*KH*KW) so convolution reduces to a matrix multiply.
func Im2Col(x *Tensor, p ConvParams) *Tensor {
	p.validate()
	if x.Rank() != 4 {
		panic(fmt.Sprintf("tensor: Im2Col requires NCHW input, got %v", x.shape))
	}
	n, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	oh, ow := p.OutSize(h, w)
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("tensor: Im2Col output size %dx%d for input %v params %+v", oh, ow, x.shape, p))
	}
	colW := c * p.KernelH * p.KernelW
	// Arena-backed: im2col matrices are the largest short-lived buffers in
	// CNN training. Callers that use the matrix as a temporary recycle it
	// with PutScratch; callers that cache it simply let the GC have it.
	cols := GetScratch(n*oh*ow, colW)
	// Each output row (one receptive field) is written by exactly one
	// worker; padding cells rely on the zero-initialized backing store.
	rows := n * oh * ow
	parFor(rows, rows*colW, func(rlo, rhi int) {
		for r := rlo; r < rhi; r++ {
			ni := r / (oh * ow)
			oy := (r / ow) % oh
			ox := r % ow
			rowOff := r * colW
			col := 0
			for ci := 0; ci < c; ci++ {
				base := (ni*c + ci) * h * w
				for ky := 0; ky < p.KernelH; ky++ {
					iy := oy*p.StrideH - p.PadH + ky
					for kx := 0; kx < p.KernelW; kx++ {
						ix := ox*p.StrideW - p.PadW + kx
						if iy >= 0 && iy < h && ix >= 0 && ix < w {
							cols.data[rowOff+col] = x.data[base+iy*w+ix]
						}
						col++
					}
				}
			}
		}
	})
	return cols
}

// Col2Im is the adjoint of Im2Col: it scatters a (N*OH*OW, C*KH*KW) matrix
// of column gradients back onto an (N, C, H, W) input-gradient tensor,
// accumulating where patches overlap.
func Col2Im(cols *Tensor, n, c, h, w int, p ConvParams) *Tensor {
	p.validate()
	oh, ow := p.OutSize(h, w)
	colW := c * p.KernelH * p.KernelW
	if cols.Rank() != 2 || cols.shape[0] != n*oh*ow || cols.shape[1] != colW {
		panic(fmt.Sprintf("tensor: Col2Im shape mismatch %v for output %dx%dx%dx%d", cols.shape, n, c, h, w))
	}
	x := New(n, c, h, w)
	// Overlapping patches accumulate, so the split is over (sample,
	// channel) planes — all writes for plane (ni, ci) land inside its own
	// h·w block, and within a plane the (oy, ox, ky, kx) visit order (and
	// hence each element's accumulation order) matches the serial scatter.
	planes := n * c
	parFor(planes, planes*oh*ow*p.KernelH*p.KernelW, func(plo, phi int) {
		for pl := plo; pl < phi; pl++ {
			ni, ci := pl/c, pl%c
			base := pl * h * w
			colBase := ci * p.KernelH * p.KernelW
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					rowOff := ((ni*oh+oy)*ow+ox)*colW + colBase
					col := 0
					for ky := 0; ky < p.KernelH; ky++ {
						iy := oy*p.StrideH - p.PadH + ky
						for kx := 0; kx < p.KernelW; kx++ {
							ix := ox*p.StrideW - p.PadW + kx
							if iy >= 0 && iy < h && ix >= 0 && ix < w {
								x.data[base+iy*w+ix] += cols.data[rowOff+col]
							}
							col++
						}
					}
				}
			}
		}
	})
	return x
}

// Conv2D computes a 2-D convolution of x (N, C, H, W) with kernels
// k (F, C, KH, KW) and per-filter bias b (F), returning (N, F, OH, OW).
// Pass a nil bias to skip the bias addition.
func Conv2D(x, k, b *Tensor, p ConvParams) *Tensor {
	if k.Rank() != 4 {
		panic(fmt.Sprintf("tensor: Conv2D kernel must be FCHW, got %v", k.shape))
	}
	f, c := k.shape[0], k.shape[1]
	if x.shape[1] != c || k.shape[2] != p.KernelH || k.shape[3] != p.KernelW {
		panic(fmt.Sprintf("tensor: Conv2D input %v incompatible with kernel %v params %+v", x.shape, k.shape, p))
	}
	n, h, w := x.shape[0], x.shape[2], x.shape[3]
	oh, ow := p.OutSize(h, w)
	cols := Im2Col(x, p)                        // (N*OH*OW, C*KH*KW)
	kmat := k.Reshape(f, c*p.KernelH*p.KernelW) // (F, C*KH*KW)
	out := MatMulTransB(cols, kmat)             // (N*OH*OW, F)
	PutScratch(cols)
	res := New(n, f, oh, ow)
	parFor(n, n*f*oh*ow, func(nlo, nhi int) {
		for ni := nlo; ni < nhi; ni++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					row := ((ni*oh+oy)*ow + ox) * f
					for fi := 0; fi < f; fi++ {
						v := out.data[row+fi]
						if b != nil {
							v += b.data[fi]
						}
						res.data[((ni*f+fi)*oh+oy)*ow+ox] = v
					}
				}
			}
		}
	})
	return res
}

// MaxPool2D applies max pooling to x (N, C, H, W) and returns the pooled
// output (N, C, OH, OW) together with the flat argmax index of each pooled
// cell (into x's data), which the backward pass uses to route gradients.
// The argmax buffer comes from the shared sched arena; callers that are
// done with it (after the matching MaxPool2DBackward, or immediately in
// inference) should recycle it with sched.PutIntBuf.
func MaxPool2D(x *Tensor, p ConvParams) (*Tensor, []int) {
	p.validate()
	if x.Rank() != 4 {
		panic(fmt.Sprintf("tensor: MaxPool2D requires NCHW input, got %v", x.shape))
	}
	n, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	oh, ow := p.OutSize(h, w)
	out := New(n, c, oh, ow)
	arg := sched.GetIntBuf(out.Size())
	// Pooling planes are independent: worker-private (ni, ci) blocks.
	planes := n * c
	parFor(planes, planes*oh*ow*p.KernelH*p.KernelW, func(plo, phi int) {
		for pl := plo; pl < phi; pl++ {
			ni, ci := pl/c, pl%c
			base := pl * h * w
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					best, bi := 0.0, -1
					for ky := 0; ky < p.KernelH; ky++ {
						iy := oy*p.StrideH - p.PadH + ky
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < p.KernelW; kx++ {
							ix := ox*p.StrideW - p.PadW + kx
							if ix < 0 || ix >= w {
								continue
							}
							v := x.data[base+iy*w+ix]
							if bi < 0 || v > best {
								best, bi = v, base+iy*w+ix
							}
						}
					}
					oi := ((ni*c+ci)*oh+oy)*ow + ox
					out.data[oi] = best
					arg[oi] = bi
				}
			}
		}
	})
	return out, arg
}

// MaxPool2DBackward scatters the pooled-output gradient g back to an
// input-shaped gradient using the argmax indices from MaxPool2D.
func MaxPool2DBackward(g *Tensor, arg []int, inShape []int) *Tensor {
	dx := New(inShape...)
	// Each (sample, channel) plane's argmax indices point inside that
	// plane, so a plane split keeps scatter-accumulation worker-private
	// and in serial element order.
	planes := inShape[0] * inShape[1]
	if planes == 0 || len(arg)%planes != 0 {
		for i, a := range arg {
			if a >= 0 {
				dx.data[a] += g.data[i]
			}
		}
		return dx
	}
	opl := len(arg) / planes
	parFor(planes, len(arg)*2, func(plo, phi int) {
		for i := plo * opl; i < phi*opl; i++ {
			if a := arg[i]; a >= 0 {
				dx.data[a] += g.data[i]
			}
		}
	})
	return dx
}
