package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewShapeAndSize(t *testing.T) {
	x := New(2, 3, 4)
	if x.Rank() != 3 || x.Size() != 24 {
		t.Fatalf("got rank=%d size=%d, want 3, 24", x.Rank(), x.Size())
	}
	if x.Dim(0) != 2 || x.Dim(1) != 3 || x.Dim(2) != 4 {
		t.Fatalf("bad dims %v", x.Shape())
	}
	for _, v := range x.Data() {
		if v != 0 {
			t.Fatal("New must zero-fill")
		}
	}
}

func TestNewPanicsOnNegativeDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative dimension")
		}
	}()
	New(2, -1)
}

func TestFromSliceAndAtSet(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	if x.At(1, 2) != 6 {
		t.Fatalf("At(1,2)=%v, want 6", x.At(1, 2))
	}
	x.Set(9, 0, 1)
	if x.At(0, 1) != 9 {
		t.Fatalf("Set failed, got %v", x.At(0, 1))
	}
}

func TestFromSlicePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for shape/data mismatch")
		}
	}()
	FromSlice([]float64{1, 2, 3}, 2, 2)
}

func TestAtPanicsOutOfRange(t *testing.T) {
	x := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range index")
		}
	}()
	_ = x.At(2, 0)
}

func TestReshapeSharesStorage(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	y := x.Reshape(4)
	y.Set(7, 0)
	if x.At(0, 0) != 7 {
		t.Fatal("Reshape must share storage")
	}
}

func TestReshapeInfer(t *testing.T) {
	x := New(2, 3, 4)
	y := x.Reshape(2, -1)
	if y.Dim(1) != 12 {
		t.Fatalf("inferred dim=%d, want 12", y.Dim(1))
	}
}

func TestReshapePanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for incompatible reshape")
		}
	}()
	New(2, 3).Reshape(4)
}

func TestCloneIsDeep(t *testing.T) {
	x := FromSlice([]float64{1, 2}, 2)
	y := x.Clone()
	y.Set(5, 0)
	if x.At(0) != 1 {
		t.Fatal("Clone must copy data")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3}, 3)
	b := FromSlice([]float64{4, 5, 6}, 3)
	if got := a.Add(b).Data(); got[0] != 5 || got[2] != 9 {
		t.Fatalf("Add got %v", got)
	}
	if got := b.Sub(a).Data(); got[0] != 3 || got[2] != 3 {
		t.Fatalf("Sub got %v", got)
	}
	if got := a.Mul(b).Data(); got[1] != 10 {
		t.Fatalf("Mul got %v", got)
	}
	if got := a.Scale(2).Data(); got[2] != 6 {
		t.Fatalf("Scale got %v", got)
	}
	c := a.Clone()
	c.AddScaledInPlace(b, 0.5)
	if c.At(0) != 3 {
		t.Fatalf("AddScaled got %v", c.Data())
	}
}

func TestReductions(t *testing.T) {
	x := FromSlice([]float64{-1, 4, 2, 3}, 4)
	if x.Sum() != 8 {
		t.Fatalf("Sum=%v", x.Sum())
	}
	if x.Mean() != 2 {
		t.Fatalf("Mean=%v", x.Mean())
	}
	if x.Max() != 4 || x.Min() != -1 {
		t.Fatalf("Max/Min=%v/%v", x.Max(), x.Min())
	}
	if x.ArgMax() != 1 {
		t.Fatalf("ArgMax=%d", x.ArgMax())
	}
	if !almostEq(x.Norm2(), math.Sqrt(1+16+4+9), 1e-12) {
		t.Fatalf("Norm2=%v", x.Norm2())
	}
	if x.Dot(x) != 30 {
		t.Fatalf("Dot=%v", x.Dot(x))
	}
}

func TestMatMulKnownValues(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if c.Data()[i] != w {
			t.Fatalf("MatMul[%d]=%v want %v", i, c.Data()[i], w)
		}
	}
}

func TestMatMulPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for inner-dim mismatch")
		}
	}()
	MatMul(New(2, 3), New(2, 3))
}

func TestMatMulTransVariantsAgree(t *testing.T) {
	g := NewRNG(1)
	a := Randn(g, 1, 4, 5)
	b := Randn(g, 1, 5, 3)
	ref := MatMul(a, b)
	viaTB := MatMulTransB(a, b.Transpose())
	viaTA := MatMulTransA(a.Transpose(), b)
	for i := range ref.Data() {
		if !almostEq(ref.Data()[i], viaTB.Data()[i], 1e-10) {
			t.Fatalf("MatMulTransB disagrees at %d: %v vs %v", i, ref.Data()[i], viaTB.Data()[i])
		}
		if !almostEq(ref.Data()[i], viaTA.Data()[i], 1e-10) {
			t.Fatalf("MatMulTransA disagrees at %d: %v vs %v", i, ref.Data()[i], viaTA.Data()[i])
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	g := NewRNG(2)
	a := Randn(g, 1, 3, 7)
	b := a.Transpose().Transpose()
	for i := range a.Data() {
		if a.Data()[i] != b.Data()[i] {
			t.Fatal("transpose twice must be identity")
		}
	}
}

func TestRowViewSharesStorage(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	r := a.Row(1)
	r.Set(9, 0)
	if a.At(1, 0) != 9 {
		t.Fatal("Row must be a view")
	}
}

func TestAddRowVectorAndSumRows(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	a.AddRowVector(FromSlice([]float64{10, 20}, 2))
	if a.At(0, 0) != 11 || a.At(1, 1) != 24 {
		t.Fatalf("AddRowVector got %v", a.Data())
	}
	s := a.SumRows()
	if s.At(0) != 11+13 || s.At(1) != 22+24 {
		t.Fatalf("SumRows got %v", s.Data())
	}
}

// Property: matrix multiplication distributes over addition.
func TestMatMulDistributesOverAdd(t *testing.T) {
	g := NewRNG(3)
	f := func(seed int64) bool {
		r := NewRNG(seed)
		a := Randn(r, 1, 3, 4)
		b := Randn(r, 1, 4, 2)
		c := Randn(r, 1, 4, 2)
		lhs := MatMul(a, b.Add(c))
		rhs := MatMul(a, b).Add(MatMul(a, c))
		for i := range lhs.Data() {
			if !almostEq(lhs.Data()[i], rhs.Data()[i], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: g.r}); err != nil {
		t.Fatal(err)
	}
}

// Property: scaling commutes with matmul: (sA)B = s(AB).
func TestMatMulScaleCommutes(t *testing.T) {
	f := func(seed int64) bool {
		r := NewRNG(seed)
		s := r.NormFloat64()
		a := Randn(r, 1, 2, 3)
		b := Randn(r, 1, 3, 2)
		lhs := MatMul(a.Scale(s), b)
		rhs := MatMul(a, b).Scale(s)
		for i := range lhs.Data() {
			if !almostEq(lhs.Data()[i], rhs.Data()[i], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Norm2(x)² == Dot(x, x).
func TestNormDotConsistency(t *testing.T) {
	f := func(seed int64) bool {
		r := NewRNG(seed)
		x := Randn(r, 2, 17)
		n := x.Norm2()
		return almostEq(n*n, x.Dot(x), 1e-8*(1+n*n))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must give same stream")
		}
	}
}

func TestForkIndependence(t *testing.T) {
	g := NewRNG(7)
	f1 := g.Fork()
	f2 := g.Fork()
	same := true
	for i := 0; i < 10; i++ {
		if f1.Float64() != f2.Float64() {
			same = false
		}
	}
	if same {
		t.Fatal("forked streams should differ")
	}
}

func TestXavierBounds(t *testing.T) {
	g := NewRNG(5)
	w := XavierUniform(g, 100, 100, 100, 100)
	bound := math.Sqrt(6.0 / 200.0)
	for _, v := range w.Data() {
		if v < -bound || v > bound {
			t.Fatalf("Xavier sample %v outside ±%v", v, bound)
		}
	}
}

func TestHeNormalStd(t *testing.T) {
	g := NewRNG(6)
	w := HeNormal(g, 50, 20000)
	var s2 float64
	for _, v := range w.Data() {
		s2 += v * v
	}
	got := math.Sqrt(s2 / float64(w.Size()))
	want := math.Sqrt(2.0 / 50.0)
	if math.Abs(got-want) > 0.02 {
		t.Fatalf("He std=%v, want ≈%v", got, want)
	}
}

func TestStringForms(t *testing.T) {
	small := FromSlice([]float64{1, 2}, 2)
	if small.String() == "" {
		t.Fatal("empty String for small tensor")
	}
	big := New(100)
	if big.String() == "" {
		t.Fatal("empty String for big tensor")
	}
}
