package tensor

import (
	"sync/atomic"

	"fedmigr/internal/sched"
)

// The tensor kernels parallelize through an ambient sched.Pool so the nn
// layers and every caller above them need no plumbing changes: the
// trainer (or a CLI) installs its pool once and all matmul / im2col /
// pooling kernels below the size threshold stay serial while large ones
// split across workers.
//
// Determinism: every parallel kernel splits its *output* into disjoint
// contiguous ranges and keeps the per-element accumulation order of the
// serial loop, so the installed pool changes wall-clock only — results
// are bit-for-bit identical for any worker count (see the parity tests in
// parallel_test.go and DESIGN.md §5).

var ambientPool atomic.Pointer[sched.Pool]

// InstallPool makes p the ambient pool for subsequent kernel calls and
// returns the previously installed pool (nil for none) so callers can
// restore it. A nil p reverts to serial execution.
func InstallPool(p *sched.Pool) *sched.Pool {
	return ambientPool.Swap(p)
}

// Pool returns the ambient pool (nil when kernels run serially).
func Pool() *sched.Pool { return ambientPool.Load() }

// minParallelWork is the approximate flop count below which splitting a
// kernel costs more than it saves; such calls take the serial path.
const minParallelWork = 1 << 15

// parFor runs fn over [0, n) through the ambient pool when the kernel's
// estimated work clears the threshold, serially otherwise.
func parFor(n int, work int, fn func(lo, hi int)) {
	p := ambientPool.Load()
	if p == nil || work < minParallelWork {
		fn(0, n)
		return
	}
	grain := n * minParallelWork / (work + 1)
	if grain < 1 {
		grain = 1
	}
	p.ParallelFor(n, grain, fn)
}

// GetScratch returns a zero-filled tensor backed by the shared sched
// arena. Pair with PutScratch when the tensor's data is dead; a scratch
// tensor that escapes (is returned or cached) may simply never be Put.
func GetScratch(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic("tensor: negative dimension in GetScratch")
		}
		n *= d
	}
	return &Tensor{shape: append([]int(nil), shape...), data: sched.GetBuf(n)}
}

// PutScratch recycles a tensor obtained from GetScratch. The tensor (and
// any view sharing its storage) must not be used afterwards.
func PutScratch(t *Tensor) {
	if t != nil {
		sched.PutBuf(t.data)
	}
}
