package fedmigr

import (
	"crypto/sha256"
	"testing"
)

// runFedMigr executes a short two-round FedMigr simulation (DRL migrator,
// non-IID shards) at the given worker count and returns the result plus a
// digest of the global model's parameters.
func runFedMigr(t *testing.T, workers int, shuffle bool) (*Result, [32]byte) {
	t.Helper()
	sim, err := New(Options{
		Scheme:    SchemeFedMigr,
		Migrator:  MigratorDRL,
		Model:     ModelMLP,
		Clients:   6,
		LANs:      2,
		PerClass:  8,
		Epochs:    8,
		AggEvery:  4, // 2 aggregations in 8 epochs: a 2-round run
		BatchSize: 8,
		EvalEvery: 4,
		Workers:   workers, ShuffleBatches: shuffle,
		Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Run()
	b, err := sim.Trainer.GlobalModel().MarshalParams()
	if err != nil {
		t.Fatal(err)
	}
	return res, sha256.Sum256(b)
}

// TestParallelRunMatchesSerial is the end-to-end determinism proof the
// scheduler promises: a FedMigr run — local SGD, DRL migration decisions,
// aggregation, evaluation — produces bit-identical model parameters and
// metrics whether it runs on one worker or eight.
func TestParallelRunMatchesSerial(t *testing.T) {
	for _, shuffle := range []bool{false, true} {
		serialRes, serialSum := runFedMigr(t, 1, shuffle)
		parallelRes, parallelSum := runFedMigr(t, 8, shuffle)
		if serialSum != parallelSum {
			t.Fatalf("shuffle=%v: global model diverges between workers=1 and workers=8", shuffle)
		}
		if serialRes.Rounds != parallelRes.Rounds || serialRes.Epochs != parallelRes.Epochs {
			t.Fatalf("shuffle=%v: run shape diverges: rounds %d vs %d, epochs %d vs %d",
				shuffle, serialRes.Rounds, parallelRes.Rounds, serialRes.Epochs, parallelRes.Epochs)
		}
		if len(serialRes.History) != len(parallelRes.History) {
			t.Fatalf("shuffle=%v: history length %d vs %d", shuffle, len(serialRes.History), len(parallelRes.History))
		}
		for i := range serialRes.History {
			s, p := serialRes.History[i], parallelRes.History[i]
			if s.TrainLoss != p.TrainLoss || s.TestAcc != p.TestAcc ||
				s.Snapshot.TotalBytes != p.Snapshot.TotalBytes ||
				s.Snapshot.ComputeSecs != p.Snapshot.ComputeSecs {
				t.Fatalf("shuffle=%v: round %d metrics diverge:\nserial   %+v\nparallel %+v", shuffle, i, s, p)
			}
		}
	}
}
