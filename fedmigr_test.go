package fedmigr

import (
	"math"
	"testing"

	"fedmigr/internal/drl"
)

// fast returns options small enough for unit testing on one core.
func fast(scheme Scheme) Options {
	return Options{
		Scheme:   scheme,
		Model:    ModelMLP,
		Clients:  4,
		LANs:     2,
		PerClass: 6,
		Epochs:   6,
		AggEvery: 3,
		Seed:     2,
	}
}

func TestRunAllSchemes(t *testing.T) {
	for _, s := range []Scheme{SchemeFedAvg, SchemeFedProx, SchemeFedSwap, SchemeRandMigr, SchemeFedMigr} {
		o := fast(s)
		if s == SchemeFedAvg || s == SchemeFedProx {
			o.AggEvery = 1
		}
		if s == SchemeFedProx {
			o.ProxMu = 0.01
		}
		res, err := Run(o)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if res.Epochs != 6 {
			t.Fatalf("%v ran %d epochs", s, res.Epochs)
		}
		if math.IsNaN(res.FinalLoss) {
			t.Fatalf("%v NaN loss", s)
		}
	}
}

func TestRunAllDatasets(t *testing.T) {
	for _, d := range []Dataset{DatasetC10, DatasetC100, DatasetINet100} {
		o := fast(SchemeFedAvg)
		o.Dataset = d
		o.AggEvery = 1
		o.Epochs = 2
		o.PerClass = 2
		if d != DatasetC10 {
			o.Clients = 4
			o.ShardsPerClient = 5
		}
		if _, err := Run(o); err != nil {
			t.Fatalf("%v: %v", d, err)
		}
	}
}

func TestRunAllModels(t *testing.T) {
	for _, m := range []Model{ModelC10CNN, ModelC100CNN, ModelResLite, ModelAlexLite, ModelMLP} {
		o := fast(SchemeFedAvg)
		o.Model = m
		o.AggEvery = 1
		o.Epochs = 1
		o.PerClass = 3
		if _, err := Run(o); err != nil {
			t.Fatalf("%v: %v", m, err)
		}
	}
}

func TestRunAllPartitions(t *testing.T) {
	for _, p := range []Partition{PartitionIID, PartitionShards, PartitionDominance, PartitionLAN} {
		o := fast(SchemeFedAvg)
		o.Partition = p
		o.AggEvery = 1
		o.Epochs = 1
		if _, err := Run(o); err != nil {
			t.Fatalf("%v: %v", p, err)
		}
	}
}

func TestRunAllMigrators(t *testing.T) {
	for _, m := range []MigratorKind{MigratorDRL, MigratorRandom, MigratorGreedyEMD, MigratorCrossLAN, MigratorWithinLAN, MigratorStay} {
		o := fast(SchemeFedMigr)
		o.Migrator = m
		o.Epochs = 4
		o.AggEvery = 2
		if _, err := Run(o); err != nil {
			t.Fatalf("%v: %v", m, err)
		}
	}
}

func TestUnknownNamesError(t *testing.T) {
	for _, o := range []Options{
		{Dataset: "nope"},
		{Partition: "nope"},
		{Model: "nope"},
		{Scheme: SchemeFedMigr, Migrator: "nope"},
	} {
		oo := fast(o.Scheme)
		if o.Dataset != "" {
			oo.Dataset = o.Dataset
		}
		if o.Partition != "" {
			oo.Partition = o.Partition
		}
		if o.Model != "" {
			oo.Model = o.Model
		}
		if o.Migrator != "" {
			oo.Migrator = o.Migrator
		}
		if _, err := Run(oo); err == nil {
			t.Fatalf("expected error for %+v", o)
		}
	}
}

func TestPrivacyOption(t *testing.T) {
	o := fast(SchemeRandMigr)
	o.PrivacyEpsilon = 100
	res, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.FinalLoss) {
		t.Fatal("privacy run NaN")
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Run(fast(SchemeRandMigr))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(fast(SchemeRandMigr))
	if err != nil {
		t.Fatal(err)
	}
	if a.FinalLoss != b.FinalLoss || a.Snapshot != b.Snapshot {
		t.Fatal("same options+seed must give identical runs")
	}
}

func TestPaperTopologyLayout(t *testing.T) {
	o := Options{Scheme: SchemeFedAvg, Clients: 10, LANs: 3, Model: ModelMLP,
		PerClass: 4, Epochs: 1, AggEvery: 1, Seed: 3}
	sim, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's split: ([0..3], [4..6], [7..9]).
	if !sim.Topology.SameLAN(0, 3) || sim.Topology.SameLAN(3, 4) || !sim.Topology.SameLAN(7, 9) {
		t.Fatalf("unexpected LAN layout %v", sim.Topology.LANOf)
	}
}

func TestPretrainWarmsAgent(t *testing.T) {
	base := fast(SchemeFedMigr)
	m := drl.NewMigrator(drl.MigratorConfig{K: base.Clients, Seed: 9})
	if err := Pretrain(m, base, 2, 4); err != nil {
		t.Fatal(err)
	}
	if m.Agent.Steps() == 0 {
		t.Fatal("pretraining did not train the agent")
	}
}

func TestBudgetOptionsPropagate(t *testing.T) {
	o := fast(SchemeFedAvg)
	o.AggEvery = 1
	o.BandwidthBudget = 1
	res, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if !res.BudgetExhausted {
		t.Fatal("bandwidth budget did not stop the run")
	}
}
