package fedmigr

import (
	"crypto/sha256"
	"testing"

	"fedmigr/internal/cluster"
)

// clusteredOpts is the shared fixture for the clustered root tests: 12
// clients in 3 LANs with LAN-correlated labels, so the ground-truth latent
// grouping IS the LAN structure.
func clusteredOpts(workers int, buffered bool) ClusteredOptions {
	return ClusteredOptions{
		Clusters: 3,
		Rounds:   3,
		Options: Options{
			Scheme:    SchemeFedAvg,
			Partition: PartitionLAN,
			Model:     ModelMLP,
			Clients:   12, LANs: 3,
			PerClass: 24, Epochs: 1000,
			Workers: workers, BufferedAgg: buffered,
			Seed: 3,
		},
	}
}

// clusteredDigest runs a clustered simulation to completion and returns a
// digest over every cluster model's parameters plus the final assignment.
func clusteredDigest(t *testing.T, workers int, buffered bool) ([32]byte, float64) {
	t.Helper()
	c, err := NewClustered(clusteredOpts(workers, buffered))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Run(0)
	h := sha256.New()
	for _, m := range c.Models() {
		blob, err := m.MarshalParams()
		if err != nil {
			t.Fatal(err)
		}
		h.Write(blob)
	}
	for _, a := range c.Manager.Assignments() {
		h.Write([]byte{byte(a)})
	}
	var digest [32]byte
	copy(digest[:], h.Sum(nil))
	overall, _ := c.Evaluate()
	return digest, overall
}

// TestClusteredWorkerInvariance: a clustered run must be bit-identical
// across worker counts AND across the buffered/streaming aggregation
// paths — the determinism contract (DESIGN.md §5) extended to the cluster
// tier.
func TestClusteredWorkerInvariance(t *testing.T) {
	ref, refAcc := clusteredDigest(t, 1, false)
	for _, tc := range []struct {
		name     string
		workers  int
		buffered bool
	}{
		{"workers8-streaming", 8, false},
		{"workers1-buffered", 1, true},
		{"workers8-buffered", 8, true},
	} {
		got, acc := clusteredDigest(t, tc.workers, tc.buffered)
		if got != ref {
			t.Errorf("%s: model/assignment bits diverge from workers1-streaming", tc.name)
		}
		if acc != refAcc {
			t.Errorf("%s: routed accuracy %v diverges from %v", tc.name, acc, refAcc)
		}
	}
}

// TestClusteredRecovery: on a seeded partition with 3 latent label
// distributions (LAN-correlated labels), the EMD clustering must recover
// the ground-truth grouping exactly, and the clustered federation must
// beat a single global model trained on the same partition for the same
// number of aggregation rounds.
func TestClusteredRecovery(t *testing.T) {
	o := clusteredOpts(0, false)
	c, err := NewClustered(o)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if !cluster.EqualPartition(c.Manager.Assignments(), c.Topology.LANOf) {
		t.Fatalf("clustering %v does not recover the latent LAN grouping %v",
			c.Manager.Assignments(), c.Topology.LANOf)
	}

	c.Run(0)
	overall, perCluster := c.Evaluate()
	for k, acc := range perCluster {
		if acc <= 0 {
			t.Fatalf("cluster %d learned nothing (accuracy %v)", k, acc)
		}
	}

	// Single-global-model baseline: same dataset, partition, model and
	// seed, FedAvg over everyone for the same number of aggregation rounds.
	base := o.Options
	base.Epochs = o.Rounds // FedAvg aggregates every epoch
	res, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if overall <= res.FinalAcc {
		t.Fatalf("clustered routed accuracy %.3f does not beat single-global baseline %.3f",
			overall, res.FinalAcc)
	}
}

// TestClusteredSaveRestore: a restored clustered run carries the saved
// assignment and per-cluster models forward bit-identically.
func TestClusteredSaveRestore(t *testing.T) {
	o := clusteredOpts(1, false)
	a, err := NewClustered(o)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.Run(2)
	dir := t.TempDir()
	if err := a.SaveState(dir); err != nil {
		t.Fatal(err)
	}
	a.Run(0) // finish the donor run
	wantOverall, _ := a.Evaluate()

	b, err := NewClustered(o)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := b.RestoreState(dir); err != nil {
		t.Fatal(err)
	}
	b.Run(0)
	gotOverall, _ := b.Evaluate()
	if gotOverall != wantOverall {
		t.Fatalf("resumed accuracy %v, want %v", gotOverall, wantOverall)
	}

	// A non-clustered checkpoint is refused.
	if err := b.RestoreState(t.TempDir()); err == nil {
		t.Fatal("restore from an empty dir should fail")
	}
}
