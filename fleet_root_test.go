package fedmigr

import (
	"crypto/sha256"
	"testing"

	"fedmigr/internal/faults"
	"fedmigr/internal/fleet"
)

// fleetJobs3 is the shared scenario of the multi-tenant end-to-end tests:
// three heterogeneous jobs — different schemes, models and datasets —
// training concurrently over one 1000-client fleet. Replicated partitions
// keep dataset memory independent of the fleet size; lazy hydration keeps
// model memory proportional to the summed demand, not to K.
func fleetJobs3(buffered bool) []JobSpec {
	base := Options{
		Partition: PartitionReplicate, ReplicaShards: 8,
		PerClass: 8, Noise: 0.8,
		AggEvery: 2, Tau: 1, BatchSize: 8, LR: 0.05,
		BufferedAgg: buffered,
	}
	a, b, c := base, base, base
	a.Scheme, a.Model, a.Dataset = SchemeFedAvg, ModelMLP, DatasetC10
	b.Scheme, b.Model, b.Dataset = SchemeFedProx, ModelMLP, DatasetC10
	b.ProxMu = 0.1
	c.Scheme, c.Model, c.Dataset = SchemeFedMigr, ModelMLP, DatasetC100
	c.Migrator = MigratorGreedyEMD
	return []JobSpec{
		{Name: "avg-c10", Demand: 8, Rounds: 2, Options: a},
		{Name: "prox-c10", Demand: 6, Rounds: 2, Options: b},
		{Name: "migr-c100", Demand: 8, Rounds: 2, Options: c},
	}
}

// runFleet3 executes the three-job fleet at the given worker count and
// returns each job's final global-model digest.
func runFleet3(t *testing.T, workers int, buffered bool, plan *faults.Plan) map[string][32]byte {
	t.Helper()
	f, err := NewFleet(FleetOptions{
		Clients: 1000, LANs: 10, Workers: workers,
		Faults: plan, Seed: 9,
		Jobs: fleetJobs3(buffered),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	f.Run(12)
	digests := make(map[string][32]byte)
	for _, j := range f.Manager.Jobs() {
		if j.State != fleet.Done {
			t.Fatalf("job %s finished %d/%d rounds (state %s)",
				j.Cfg.Name, j.RoundsDone, j.Cfg.Rounds, j.State)
		}
		bts, err := j.Trainer.GlobalModel().MarshalParams()
		if err != nil {
			t.Fatal(err)
		}
		digests[j.Cfg.Name] = sha256.Sum256(bts)
	}
	return digests
}

// TestFleetWorkerInvariance1k extends DESIGN.md §5's determinism invariant
// across the job dimension at scale: three concurrent jobs over a shared
// 1000-client fleet produce bit-identical per-job global models whether
// the shared pool runs 1 worker or 8, and whether aggregation streams or
// buffers.
func TestFleetWorkerInvariance1k(t *testing.T) {
	serial := runFleet3(t, 1, false, nil)
	parallel := runFleet3(t, 8, false, nil)
	buffered := runFleet3(t, 8, true, nil)
	for name, d := range serial {
		if parallel[name] != d {
			t.Errorf("job %s: 8-worker model diverged from serial", name)
		}
		if buffered[name] != d {
			t.Errorf("job %s: buffered aggregation diverged from streaming", name)
		}
	}
}

// TestFleetFaultsChaos runs the three jobs under a fault plan — permanent
// crashes, a rolling outage window, and stragglers — and requires that no
// job loses a round: dead clients are reallocated across ALL jobs, so with
// 1000 clients and a handful faulted every job still completes its budget
// in the minimum number of fleet rounds.
func TestFleetFaultsChaos(t *testing.T) {
	plan := faults.NewPlan(9)
	for c := 0; c < 10; c++ {
		plan.CrashAt(c, 0) // dead from the first fleet round
	}
	for c := 10; c < 30; c++ {
		plan.Outage(c, 1, 3)
	}
	plan.Straggler(31, 4.0)
	plan.Straggler(32, 2.5)

	f, err := NewFleet(FleetOptions{
		Clients: 1000, LANs: 10, Workers: 4,
		Faults: plan, Seed: 9,
		Jobs: fleetJobs3(false),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	f.Run(12)
	for _, j := range f.Manager.Jobs() {
		if j.State != fleet.Done {
			t.Fatalf("job %s lost rounds under faults: %d/%d (state %s)",
				j.Cfg.Name, j.RoundsDone, j.Cfg.Rounds, j.State)
		}
	}
	// Every job's budget is 2 rounds and the fleet always had clients to
	// spare, so 2 fleet rounds must have sufficed.
	if got := f.Manager.Round(); got != 2 {
		t.Fatalf("fleet took %d rounds, want 2 (a job was starved)", got)
	}
}

// TestFleetAdmissionControl exercises the hydrated-replica budget through
// the public API: an over-budget job is rejected at assembly (kept in the
// job list for reporting), a job that does not fit *now* queues behind the
// running set and is promoted — and completes — once budget frees up.
func TestFleetAdmissionControl(t *testing.T) {
	base := Options{
		Partition: PartitionReplicate, ReplicaShards: 8, Model: ModelMLP,
		PerClass: 8, AggEvery: 1, Tau: 1, BatchSize: 8,
	}
	f, err := NewFleet(FleetOptions{
		Clients: 40, LANs: 4, Workers: 2, Seed: 11, MaxHydrated: 10,
		Jobs: []JobSpec{
			{Name: "first", Demand: 6, Rounds: 2, Options: base},
			{Name: "huge", Demand: 20, Rounds: 1, Options: base},
			{Name: "waits", Demand: 6, Rounds: 1, Options: base},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	jobs := f.Manager.Jobs()
	if got := jobs[1].State; got != fleet.Rejected {
		t.Fatalf("over-budget job state %s, want rejected", got)
	}
	if got := jobs[2].State; got != fleet.Queued {
		t.Fatalf("queued job state %s, want queued", got)
	}
	f.Run(8)
	if got := jobs[0].State; got != fleet.Done {
		t.Fatalf("first job state %s, want done", got)
	}
	if got := jobs[2].State; got != fleet.Done {
		t.Fatalf("promoted job state %s, want done", got)
	}
	if got := jobs[1].State; got != fleet.Rejected {
		t.Fatalf("rejected job state changed to %s", got)
	}
	// The queued job cannot have started before the running one finished:
	// it needed 1 round and the first needed 2, so at least 3 fleet rounds.
	if got := f.Manager.Round(); got < 3 {
		t.Fatalf("fleet finished in %d rounds; queue was jumped", got)
	}
}
