#!/usr/bin/env sh
# bench.sh — runs the scheduler-related benchmarks (sched primitives,
# parallel tensor kernels, the 50-client trainer round) across worker
# counts and writes BENCH_sched.json: one record per (op, workers) with
# ns/op, allocs/op and the speedup against that op's workers=1 baseline.
# Then sweeps the aggregation path with fedmigr-sim and writes
# BENCH_agg.json: one record per (clients, mode) — buffered baseline vs
# streaming at fan-out 1/4/16 — with post-GC heap, Go runtime footprint
# (the peak-RSS proxy), peak hydrated replicas, and ns/round. The point
# of the sweep is the flat heap column as clients grows 1000 → 100000.
#
# Usage: scripts/bench.sh [output.json]
#   BENCHTIME=5x scripts/bench.sh   # longer runs for stabler numbers
#
# The `cores` field records how many CPUs the host actually had: speedups
# can only materialize up to that bound (workers beyond cores add nothing
# but scheduling noise).
set -eu
cd "$(dirname "$0")/.."

out="${1:-BENCH_sched.json}"
benchtime="${BENCHTIME:-2x}"

# Numbers from a tree that violates the determinism/lock invariants are
# not comparable run-to-run; refuse to record them.
if ! go run ./cmd/fedmigr-lint ./...; then
    echo "bench.sh: refusing to record benchmarks from a tree that fails lint" >&2
    exit 1
fi

# ---- lint engine cold/warm -> BENCH_lint.json -------------------------
# Times a whole-tree lint with an empty incremental cache and again with
# the warm cache the first run just wrote. The warm number is the cost CI
# pays on an unchanged tree; the ratio is the cache's whole reason to
# exist (the CI lint step asserts warm >= 5x faster).
lint_out="BENCH_lint.json"
lintbin=$(mktemp)
lintcache=$(mktemp -d)
go build -o "$lintbin" ./cmd/fedmigr-lint
start=$(date +%s%N)
"$lintbin" -cache-dir "$lintcache" ./...
cold=$(($(date +%s%N) - start))
start=$(date +%s%N)
"$lintbin" -cache-dir "$lintcache" ./...
warm=$(($(date +%s%N) - start))
rm -rf "$lintbin" "$lintcache"
awk -v cold="$cold" -v warm="$warm" 'BEGIN {
    # %.0f, not %d: a cold whole-tree lint is tens of seconds, past 2^31 ns.
    sp = (warm > 0) ? cold / warm : 0
    printf "[\n  {\"op\": \"lint_cold\", \"ns_total\": %.0f},\n", cold
    printf "  {\"op\": \"lint_warm\", \"ns_total\": %.0f, \"speedup_vs_cold\": %.1f}\n]\n", warm, sp
}' > "$lint_out"
echo "bench.sh: wrote $lint_out (cold $((cold / 1000000)) ms, warm $((warm / 1000000)) ms)"

cores=$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench 'BenchmarkForEach|BenchmarkParallelFor|BenchmarkArena' -benchtime "$benchtime" ./internal/sched | tee -a "$tmp"
go test -run '^$' -bench 'BenchmarkMatMul$|BenchmarkConv2D$' -benchtime "$benchtime" ./internal/tensor | tee -a "$tmp"
go test -run '^$' -bench 'BenchmarkTrainerRound' -benchtime "$benchtime" . | tee -a "$tmp"

awk -v cores="$cores" '
/^Benchmark/ && /ns\/op/ {
    name = $1
    sub(/-[0-9]+$/, "", name)            # strip the GOMAXPROCS suffix
    workers = 1
    if (match(name, /workers=[0-9]+/))
        workers = substr(name, RSTART + 8, RLENGTH - 8) + 0
    op = name
    sub(/^Benchmark/, "", op)
    sub(/\/?(clients=[0-9]+\/)?workers=[0-9]+/, "", op)
    ns = $3 + 0
    allocs = "null"
    for (i = 1; i <= NF; i++)
        if ($i == "allocs/op") allocs = $(i - 1)
    n++
    ops[n] = op; ws[n] = workers; nss[n] = ns; als[n] = allocs
    if (workers == 1 && !(op in base)) base[op] = ns
}
END {
    printf "[\n"
    for (i = 1; i <= n; i++) {
        sp = (ops[i] in base && nss[i] > 0) ? base[ops[i]] / nss[i] : 1
        printf "  {\"op\": \"%s\", \"workers\": %d, \"ns_per_op\": %.1f, \"allocs_per_op\": %s, \"speedup_vs_serial\": %.3f, \"cores\": %d}%s\n", \
            ops[i], ws[i], nss[i], als[i], sp, cores, (i < n ? "," : "")
    }
    printf "]\n"
}' "$tmp" > "$out"

echo "bench.sh: wrote $out ($(grep -c '"op"' "$out") records, $cores cores)"

# ---- aggregation-path sweep -> BENCH_agg.json -------------------------
# Every run samples a 64-client cohort per round (memory must not depend
# on the total client count), partitions data over a replicated shard pool
# and prints a `memstats:` line the awk below turns into JSON. ns/round
# divides measured wall time by the run's aggregation rounds (epochs-1 at
# -agg 1); it is a smoke-grade number, not a microbenchmark.
agg_out="BENCH_agg.json"
simbin=$(mktemp)
trap 'rm -f "$tmp" "$simbin"' EXIT
go build -o "$simbin" ./cmd/fedmigr-sim

epochs=3
rounds=$((epochs - 1))
: > "$tmp"
for k in 1000 10000 100000; do
    for mode in buffered stream-fan1 stream-fan4 stream-fan16; do
        case "$mode" in
        buffered)     modeflags="-buffered-agg" ;;
        stream-fan1)  modeflags="-aggregators 1" ;;
        stream-fan4)  modeflags="-aggregators 4" ;;
        stream-fan16) modeflags="-aggregators 16" ;;
        esac
        start=$(date +%s%N)
        line=$("$simbin" -scheme fedavg -model mlp -partition replicate \
            -clients "$k" -lans 16 -perclass 32 -epochs "$epochs" -agg 1 \
            -batch 8 -cohort 64 -seed 3 -quiet -memstats $modeflags |
            grep '^memstats:')
        elapsed=$(($(date +%s%N) - start))
        echo "$k $mode $((elapsed / rounds)) $line"
    done
done | tee -a "$tmp"

awk '
{
    heap = sys = hyd = "null"
    for (i = 4; i <= NF; i++) {
        if (sub(/^heap_alloc_mb=/, "", $i)) heap = $i
        if (sub(/^sys_mb=/, "", $i))        sys = $i
        if (sub(/^max_hydrated=/, "", $i))  hyd = $i
    }
    n++
    printf "%s  {\"clients\": %d, \"mode\": \"%s\", \"ns_per_round\": %d, \"heap_alloc_mb\": %s, \"sys_mb\": %s, \"max_hydrated\": %s}", \
        (n > 1 ? ",\n" : "[\n"), $1, $2, $3, heap, sys, hyd
}
END { printf "\n]\n" }' "$tmp" > "$agg_out"

echo "bench.sh: wrote $agg_out ($(grep -c '"mode"' "$agg_out") records)"

# ---- multi-job fleet sweep -> BENCH_jobs.json -------------------------
# Sweeps the multi-tenant job manager at 1/3/8 concurrent jobs over a
# shared 1000-client fleet (2 fleet rounds each), plus a back-to-back
# sequential baseline of the same 3 jobs in their own single-job fleets.
# The headline number is ratio_vs_sequential on the 3-job multi record:
# concurrent tenancy must stay within 1.3x of sequential (jobs step
# serially inside a round by design, so the overhead is allocator +
# bookkeeping only). Also records the rectangular Hungarian allocator
# microbenchmark from internal/qp.
jobs_out="BENCH_jobs.json"
qp_tmp=$(mktemp)
trap 'rm -f "$tmp" "$simbin" "$qp_tmp"' EXIT
go test -run '^$' -bench 'BenchmarkRectAssignment' -benchtime "$benchtime" ./internal/qp | tee "$qp_tmp"

jobspec() {
    n=$1 i=0 spec=""
    while [ "$i" -lt "$n" ]; do
        spec="${spec}name=j$i,model=mlp,demand=8,rounds=2,seed=$((i + 1));"
        i=$((i + 1))
    done
    printf '%s' "$spec"
}

fleetflags="-clients 1000 -lans 10 -partition replicate -replica-shards 8 \
    -perclass 8 -agg 2 -batch 8 -seed 9 -quiet"

: > "$tmp"
for n in 1 3 8; do
    start=$(date +%s%N)
    $simbin -jobs "$(jobspec "$n")" $fleetflags > /dev/null
    elapsed=$(($(date +%s%N) - start))
    echo "$n multi $elapsed"
done | tee -a "$tmp"

seq_total=0
for i in 0 1 2; do
    start=$(date +%s%N)
    $simbin -jobs "name=j$i,model=mlp,demand=8,rounds=2,seed=$((i + 1))" \
        $fleetflags > /dev/null
    seq_total=$((seq_total + $(date +%s%N) - start))
done
echo "3 sequential $seq_total" | tee -a "$tmp"

awk -v qpfile="$qp_tmp" '
{
    n++
    jobs[n] = $1; mode[n] = $2; ns[n] = $3
    if ($1 == 3 && $2 == "sequential") seq3 = $3
    if ($1 == 3 && $2 == "multi")      multi3 = $3
}
END {
    printf "[\n"
    for (i = 1; i <= n; i++) {
        ratio = "null"
        if (jobs[i] == 3 && mode[i] == "multi" && seq3 > 0)
            ratio = sprintf("%.3f", multi3 / seq3)
        printf "  {\"jobs\": %d, \"clients\": 1000, \"mode\": \"%s\", \"ns_total\": %d, \"ns_per_fleet_round\": %d, \"ratio_vs_sequential\": %s},\n", \
            jobs[i], mode[i], ns[i], ns[i] / 2, ratio
    }
    while ((getline line < qpfile) > 0) {
        if (line !~ /^BenchmarkRectAssignment/) continue
        split(line, f, /[ \t]+/)
        name = f[1]; sub(/-[0-9]+$/, "", name); sub(/^Benchmark/, "", name)
        m++
        printf "%s  {\"op\": \"%s\", \"ns_per_op\": %.1f}", (m > 1 ? ",\n" : ""), name, f[3]
    }
    printf "\n]\n"
}' "$tmp" > "$jobs_out"

echo "bench.sh: wrote $jobs_out ($(grep -c '"jobs"\|"op"' "$jobs_out") records)"

# ---- churn-rate sweep -> BENCH_churn.json -----------------------------
# Sweeps the seeded arrival process: a 64-client founding cohort plus
# 0/64/256/1024 late joiners arriving over epochs [1,5). Every join epoch
# is a splitmix64 hash of (plan seed, client id), so the schedule replays
# identically at any rate; the sweep records the replayed arrival rate in
# joins per simulated minute (reaching thousands at the top end) and the
# wall cost per epoch, which must stay near-flat — admission is O(1) per
# joiner, not a cohort-wide reshuffle.
churn_out="BENCH_churn.json"
epochs=6
: > "$tmp"
for n in 0 64 256 1024; do
    churnflags=""
    if [ "$n" -gt 0 ]; then churnflags="-churn 64:$n:1-5"; fi
    start=$(date +%s%N)
    run=$("$simbin" -scheme fedavg -model mlp -partition replicate \
        -replica-shards 8 -clients $((64 + n)) -lans 8 -perclass 8 \
        -epochs "$epochs" -agg 2 -batch 8 -cohort 32 -seed 11 -quiet $churnflags)
    elapsed=$(($(date +%s%N) - start))
    joins=$(printf '%s\n' "$run" | sed -n 's/^churn: joins=\([0-9]*\).*/\1/p')
    simwall=$(printf '%s\n' "$run" | sed -n 's/^time: wall=\([0-9.]*\)s.*/\1/p')
    echo "$n ${joins:-0} ${simwall:-0} $((elapsed / epochs))"
done | tee -a "$tmp"

awk '
{
    n++
    rate = ($3 > 0) ? $2 / ($3 / 60) : 0
    printf "%s  {\"founding\": 64, \"joiners\": %d, \"joins\": %d, \"sim_wall_s\": %s, \"joins_per_sim_min\": %.1f, \"ns_per_epoch\": %d}", \
        (n > 1 ? ",\n" : "[\n"), $1, $2, $3, rate, $4
}
END { printf "\n]\n" }' "$tmp" > "$churn_out"

echo "bench.sh: wrote $churn_out ($(grep -c '"joiners"' "$churn_out") records)"

# ---- clustered-federation sweep -> BENCH_cluster.json -----------------
# Sweeps clusters 1/2/4/8 x clients 100/1000 on a LAN-correlated workload
# with 8 latent label groups, recording rounds-to-target (routed accuracy
# 0.7, -1 = not reached in the 30-round budget) and total upload bytes.
# The headline shape: as the cluster count approaches the latent group
# count, rounds-to-target collapses — one global model (clusters=1) burns
# the whole budget reconciling 8 label distributions that per-group models
# fit in a round or two. Then records the one-shot analytic baseline and
# an iterative FedMigr run at each fleet size; the analytic record carries
# saving_vs_fedmigr = FedMigr's total traffic over the analytic upload —
# the communication price of iterating at all on this workload.
cluster_out="BENCH_cluster.json"
cluster_target=0.7
: > "$tmp"
for k in 100 1000; do
    case "$k" in
    100)  pc=100 ;;
    1000) pc=300 ;;
    esac
    clusterflags="-partition lan -clients $k -lans 8 -perclass $pc \
        -scheme fedavg -agg 1 -batch 8 -cohort 16 -seed 5 -quiet"
    for c in 1 2 4 8; do
        line=$("$simbin" -clusters "$c" -cluster-rounds 30 \
            -target "$cluster_target" $clusterflags | grep '^clustered:')
        echo "clustered $c $k $line"
    done
    aline=$("$simbin" -analytic $clusterflags | grep '^analytic:')
    echo "analytic 0 $k $aline"
    mrun=$("$simbin" -scheme fedmigr -migrator greedy -partition lan \
        -clients "$k" -lans 8 -perclass "$pc" -epochs 30 -batch 8 \
        -cohort 16 -target "$cluster_target" -seed 5 -quiet)
    mbytes=$(printf '%s\n' "$mrun" | sed -n 's/^traffic: total=\([0-9.]*\)MB.*/\1/p')
    macc=$(printf '%s\n' "$mrun" | sed -n 's/.*final_acc=\([0-9.]*\).*/\1/p')
    echo "fedmigr 0 $k total_mb=${mbytes:-0} acc=${macc:-0}"
done | tee -a "$tmp"

# Records are buffered and printed in END so the analytic records can
# carry the saving ratio against the FedMigr run parsed later.
awk -v target="$cluster_target" '
{
    for (i = 4; i <= NF; i++) { split($i, kv, "="); v[kv[1]] = kv[2] }
    if ($1 == "clustered") {
        n++
        rec[n] = sprintf("{\"mode\": \"clustered\", \"clusters\": %d, \"clients\": %d, \"target_acc\": %s, \"rounds_to_target\": %s, \"rounds\": %s, \"routed_acc\": %s, \"total_bytes\": %s, \"handoff_bytes\": %s}", \
            $2, $3, target, v["rounds_to_target"], v["rounds"], v["routed_acc"], v["total_bytes"], v["handoff_bytes"])
    } else if ($1 == "analytic") {
        n++
        rec[n] = sprintf("{\"mode\": \"analytic\", \"clients\": %d, \"rounds\": 1, \"acc\": %s, \"upload_bytes\": %s", $3, v["acc"], v["upload_bytes"])
        ak[n] = $3                       # patched with the saving in END
        ab[$3] = v["upload_bytes"]
    } else if ($1 == "fedmigr") {
        n++
        rec[n] = sprintf("{\"mode\": \"fedmigr\", \"clients\": %d, \"acc\": %s, \"total_bytes\": %.0f}", $3, v["acc"], v["total_mb"] * 1e6)
        fb[$3] = v["total_mb"] * 1e6
    }
    delete v
}
END {
    printf "[\n"
    for (i = 1; i <= n; i++) {
        if (i in ak) {
            saving = (ab[ak[i]] > 0) ? fb[ak[i]] / ab[ak[i]] : 0
            rec[i] = rec[i] sprintf(", \"saving_vs_fedmigr\": %.2f}", saving)
        }
        printf "  %s%s\n", rec[i], (i < n ? "," : "")
    }
    printf "]\n"
}' "$tmp" > "$cluster_out"

echo "bench.sh: wrote $cluster_out ($(grep -c '"mode"' "$cluster_out") records)"
