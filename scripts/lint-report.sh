#!/usr/bin/env sh
# lint-report.sh — runs fedmigr-lint in JSON mode and prints per-analyzer,
# per-package and per-chain-depth summary tables. Exits with
# fedmigr-lint's status (0 clean, 1 findings, 2 load error), and forces a
# failure when any suppression directive is missing its reason (the
# "lint" pseudo-analyzer findings), so a silent //lint:ignore can never
# ride through a green report.
#
# Usage: scripts/lint-report.sh [patterns...]   (default ./...)
set -u
cd "$(dirname "$0")/.."

[ $# -eq 0 ] && set -- ./...

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

go run ./cmd/fedmigr-lint -json "$@" > "$tmp"
status=$?
if [ "$status" -eq 2 ]; then
    echo "lint-report.sh: fedmigr-lint failed to load packages" >&2
    exit 2
fi

# One finding-object per line (see internal/analysis/json.go), so every
# field is extractable with sed alone.
field() { # field <name>: print one value per finding line
    grep '"analyzer"' "$tmp" | sed "s/.*\"$1\":\"\\([^\"]*\\)\".*/\\1/"
}

total=$(grep -c '"analyzer"' "$tmp" || true)
echo "lint report ($*)"
echo "--------------------------------"
if [ "$total" -eq 0 ]; then
    printf '%-40s %s\n' "(no findings)" 0
else
    echo "by analyzer:"
    field analyzer | sort | uniq -c | awk '{ printf "  %-38s %d\n", $2, $1 }'
    echo "by package:"
    field package | sort | uniq -c | awk '{ printf "  %-38s %d\n", $2, $1 }'
    # Depth is a number (and omitted when 0): count direct findings vs
    # findings seen only through the interprocedural fact engine.
    echo "by call-chain depth:"
    grep '"analyzer"' "$tmp" \
        | sed 's/.*"depth":\([0-9]*\).*/\1/; /[^0-9]/s/.*/0/' \
        | sort -n | uniq -c \
        | awk '{ printf "  depth %-32s %d\n", $2, $1 }'
fi
echo "--------------------------------"
printf '%-40s %d\n' "total" "$total"

# Malformed suppressions (missing reason / broken analyzer list) surface
# as findings of the built-in "lint" pseudo-analyzer; they must fail the
# report even if somebody filters the main run down to clean analyzers.
badsup=$(field analyzer | grep -cx 'lint' || true)
if [ "$badsup" -gt 0 ]; then
    echo "lint-report.sh: $badsup suppression directive(s) without a valid reason:" >&2
    grep '"analyzer":"lint"' "$tmp" >&2
    exit 1
fi
exit "$status"
