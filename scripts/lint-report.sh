#!/usr/bin/env sh
# lint-report.sh — runs fedmigr-lint in JSON mode and prints a
# per-analyzer summary table. Exits with fedmigr-lint's status (0 clean,
# 1 findings, 2 load error), so it can stand in for the raw lint run in
# CI while giving a more readable roll-up.
#
# Usage: scripts/lint-report.sh [patterns...]   (default ./...)
set -u
cd "$(dirname "$0")/.."

[ $# -eq 0 ] && set -- ./...

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

go run ./cmd/fedmigr-lint -json "$@" > "$tmp"
status=$?
if [ "$status" -eq 2 ]; then
    echo "lint-report.sh: fedmigr-lint failed to load packages" >&2
    exit 2
fi

total=$(grep -c '"analyzer"' "$tmp" || true)
echo "lint report ($*)"
echo "--------------------------------"
if [ "$total" -eq 0 ]; then
    printf '%-20s %s\n' "(no findings)" 0
else
    # One finding-object per line (see internal/analysis/json.go), so the
    # analyzer field is extractable with sed alone.
    grep '"analyzer"' "$tmp" \
        | sed 's/.*"analyzer":"\([^"]*\)".*/\1/' \
        | sort | uniq -c \
        | awk '{ printf "%-20s %d\n", $2, $1 }'
fi
echo "--------------------------------"
printf '%-20s %d\n' "total" "$total"
exit "$status"
