#!/usr/bin/env sh
# check.sh — the repo's pre-commit gate: formatting, vet, build, and the
# full test suite under the race detector.
set -eu
cd "$(dirname "$0")/.."

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...
go build ./...
go test -race ./...
echo "check.sh: all checks passed"
