#!/usr/bin/env sh
# check.sh — the repo's pre-commit gate: formatting, vet, build, the full
# test suite under the race detector (including the chaos fault-injection
# session), and a short fuzz smoke over the wire-frame decoder.
set -eu
cd "$(dirname "$0")/.."

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...
go build ./...
go test -race ./...
go test -run '^$' -fuzz FuzzReadMessage -fuzztime 10s ./internal/fednet
echo "check.sh: all checks passed"
