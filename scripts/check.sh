#!/usr/bin/env sh
# check.sh — the repo's pre-commit gate: formatting, vet, build, the full
# test suite under the race detector (including the chaos fault-injection
# session and the parallel-vs-serial parity tests), a trainer benchmark
# smoke, and a short fuzz smoke over the wire-frame decoder.
set -eu
cd "$(dirname "$0")/.."

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...
go build ./...
# Project-specific invariants (determinism zones, lock discipline, error
# handling, telemetry naming, float comparisons, goroutine lifecycle,
# kernel allocation discipline, wire exhaustiveness) — exits non-zero on
# any finding; see cmd/fedmigr-lint and DESIGN.md §6.
go run ./cmd/fedmigr-lint ./...
# Self-lint: the lint engine is held to its own bar. -all-zones disables
# the package-path gates so errcheck and lockcheck apply to
# internal/analysis itself even though it sits in no analyzer zone.
go run ./cmd/fedmigr-lint -only errcheck,lockcheck -all-zones ./internal/analysis/...
# internal/experiments alone runs ~9 min under the race detector on a
# single core, right at go test's default 10m per-package timeout; give
# the suite explicit headroom so slow hosts don't flake.
go test -race -timeout 30m ./...
# Determinism parity under the race detector: parallel kernels and the
# worker-invariance proofs run again explicitly so a -run filter in the
# suite above can never silently skip them.
go test -race -run 'Parity|WorkerCountInvariance|ParallelRunMatchesSerial' ./internal/tensor ./internal/core .
# Multi-tenant determinism under the race detector: three concurrent jobs
# over a shared 1000-client fleet must produce bit-identical per-job
# models at 1 and 8 workers, streaming or buffered aggregation.
go test -race -run 'TestFleetWorkerInvariance1k' .
# Clustered-federation determinism under the race detector: the EMD
# clustering must recover the latent LAN grouping exactly and beat the
# single-global-model baseline, and both the clustered and one-shot
# analytic paths must be bit-identical at 1 vs 8 workers, streaming or
# buffered aggregation.
go test -race -run 'TestClusteredWorkerInvariance|TestClusteredRecovery' .
go test -race -run 'TestAnalyticWorkerCountInvariance' ./internal/core
# Dynamic-membership chaos under the race detector: 8 founding clients,
# two mid-session joins with warm handoff, one graceful leave whose
# in-flight TrainState is adopted by a survivor, and one crash — the
# session must lose zero rounds, and the test checks goroutine leaks.
go test -race -run 'TestChurnChaosSession' ./internal/fednet
# 100k-client streaming smoke: one full cohort-sampled, hierarchically
# aggregated run at 100 000 simulated clients. The test itself asserts the
# post-GC heap ceiling (256 MB) and that peak hydrated replicas equal the
# cohort size — the O(1)-memory contract of the streaming upload path.
go test -run 'Test100kClientStreamingSmoke' .
# Scheduler benchmark smoke: one iteration of the 50-client round at each
# worker count (compile + run sanity, not a measurement).
go test -run '^$' -bench 'BenchmarkTrainer' -benchtime=1x .
go test -run '^$' -fuzz FuzzReadMessage -fuzztime 10s ./internal/fednet
echo "check.sh: all checks passed"
