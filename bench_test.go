// Package fedmigr_test holds the benchmark harness: one testing.B
// benchmark per table and figure of the paper (regenerating the same
// rows/series at reduced scale) plus ablation benches for the design
// choices DESIGN.md calls out. Run with:
//
//	go test -bench=. -benchmem
//
// Each experiment benchmark reports the wall time of regenerating the
// artifact; the artifact's content is what EXPERIMENTS.md records.
package fedmigr_test

import (
	"fmt"
	"io"
	"testing"

	fedmigr "fedmigr"
	"fedmigr/internal/drl"
	"fedmigr/internal/experiments"
	"fedmigr/internal/qp"
	"fedmigr/internal/telemetry"
	"fedmigr/internal/tensor"
)

// benchScale keeps the full bench suite in the minutes range on one core.
const benchScale = 0.25

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.Get(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := e.Run(experiments.Params{Scale: benchScale, Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		rep.Print(io.Discard)
	}
}

// One benchmark per paper artifact (Sec. III-A and Sec. IV).

func BenchmarkFig3(b *testing.B)   { benchExperiment(b, "fig3") }
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "tab1") }
func BenchmarkFig4(b *testing.B)   { benchExperiment(b, "fig4") }
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "tab2") }
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "tab3") }
func BenchmarkFig5(b *testing.B)   { benchExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)   { benchExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)   { benchExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)   { benchExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)   { benchExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)  { benchExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B)  { benchExperiment(b, "fig11") }

// Extension artifacts (DESIGN.md §8): component ablations, the Sec. II-C
// theory check, and the sync-vs-async comparison.
func BenchmarkAblations(b *testing.B)  { benchExperiment(b, "abl") }
func BenchmarkDivergence(b *testing.B) { benchExperiment(b, "div") }
func BenchmarkAsync(b *testing.B)      { benchExperiment(b, "async") }

// --- ablation benches --------------------------------------------------------

// ablationOptions is the shared small workload for policy ablations.
func ablationOptions(mig fedmigr.MigratorKind, seed int64) fedmigr.Options {
	return fedmigr.Options{
		Scheme:    fedmigr.SchemeFedMigr,
		Migrator:  mig,
		Dataset:   fedmigr.DatasetC10,
		Partition: fedmigr.PartitionShards,
		Model:     fedmigr.ModelMLP,
		Clients:   10, LANs: 3,
		PerClass: 10, Noise: 1.6,
		Epochs: 20, AggEvery: 5,
		Seed: seed,
	}
}

func benchPolicy(b *testing.B, mig fedmigr.MigratorKind) {
	b.Helper()
	acc := 0.0
	for i := 0; i < b.N; i++ {
		res, err := fedmigr.Run(ablationOptions(mig, int64(i+1)))
		if err != nil {
			b.Fatal(err)
		}
		acc += res.BestAcc()
	}
	b.ReportMetric(100*acc/float64(b.N), "acc%")
}

// BenchmarkAblationPolicy* compare migration policies at matched budget:
// the learned/greedy policies should beat random, and all should beat
// staying put (the paper's core claim).
func BenchmarkAblationPolicyGreedy(b *testing.B) { benchPolicy(b, fedmigr.MigratorGreedyEMD) }
func BenchmarkAblationPolicyRandom(b *testing.B) { benchPolicy(b, fedmigr.MigratorRandom) }
func BenchmarkAblationPolicyCross(b *testing.B)  { benchPolicy(b, fedmigr.MigratorCrossLAN) }
func BenchmarkAblationPolicyWithin(b *testing.B) { benchPolicy(b, fedmigr.MigratorWithinLAN) }
func BenchmarkAblationPolicyStay(b *testing.B)   { benchPolicy(b, fedmigr.MigratorStay) }

// benchDDPGTrain measures one EMPG training step (Alg. 1 lines 10–20) at a
// given PER prioritization exponent — ξ=0 ablates prioritization to
// uniform replay.
func benchDDPGTrain(b *testing.B, xi float64) {
	b.Helper()
	agent := drl.NewDDPG(drl.DDPGConfig{StateDim: drl.StateDim(10), ActionDim: 10, BatchSize: 16, XiPER: xi, Seed: 1})
	g := tensor.NewRNG(2)
	st := make([]float64, drl.StateDim(10))
	ac := make([]float64, 10)
	for i := 0; i < 256; i++ {
		for j := range st {
			st[j] = g.Float64()
		}
		for j := range ac {
			ac[j] = 0
		}
		ac[g.Intn(10)] = 1
		agent.Observe(drl.Transition{
			State:  append([]float64(nil), st...),
			Action: append([]float64(nil), ac...),
			Reward: g.NormFloat64(), NextState: append([]float64(nil), st...),
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agent.TrainStep()
	}
}

// BenchmarkAblationPEROn/Off compare prioritized vs uniform replay cost.
func BenchmarkAblationPEROn(b *testing.B)  { benchDDPGTrain(b, 0.6) }
func BenchmarkAblationPEROff(b *testing.B) { benchDDPGTrain(b, -1) } // ξ<0 → uniform replay

// BenchmarkQPSolve measures the FLMM relaxation (S-COP of Fig. 6) per
// solve at K=50.
func BenchmarkQPSolve(b *testing.B) {
	g := tensor.NewRNG(3)
	const k = 50
	u := make([][]float64, k)
	for i := range u {
		u[i] = make([]float64, k)
		for j := range u[i] {
			u[i][j] = g.NormFloat64()
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := &qp.Problem{Utility: u, Iters: 50}
		_ = qp.RoundArgmax(p.Solve())
	}
}

// BenchmarkDRLInference measures actor inference (the fast path of Fig. 6)
// at K=50.
func BenchmarkDRLInference(b *testing.B) {
	agent := drl.NewDDPG(drl.DDPGConfig{StateDim: drl.StateDim(50), ActionDim: 50, Seed: 4})
	st := make([]float64, drl.StateDim(50))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = agent.Act(st)
	}
}

// BenchmarkLocalEpoch measures one federated epoch (all replicas, one pass)
// of the C10-CNN workload — the compute kernel every experiment spends its
// time in.
func BenchmarkLocalEpoch(b *testing.B) {
	o := fedmigr.Options{
		Scheme: fedmigr.SchemeFedAvg, Dataset: fedmigr.DatasetC10,
		Model: fedmigr.ModelC10CNN, Clients: 10, LANs: 3,
		PerClass: 10, Epochs: 1, AggEvery: 1, Seed: 1,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := fedmigr.Run(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrainerRound measures one federated round at the paper's
// test-bed scale (50 clients, CNN replicas) across worker counts — the
// scheduler's headline number. The workers=1 subbenchmark is the serial
// baseline; speedups are ratios against it (scripts/bench.sh computes
// them into BENCH_sched.json). On a single-core host all worker counts
// collapse to the same wall time; the determinism tests guarantee the
// results are identical either way.
func BenchmarkTrainerRound(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("clients=50/workers=%d", workers), func(b *testing.B) {
			o := fedmigr.Options{
				Scheme: fedmigr.SchemeFedAvg, Dataset: fedmigr.DatasetC10,
				Model: fedmigr.ModelC10CNN, Clients: 50, LANs: 5,
				PerClass: 25, Epochs: 1, AggEvery: 1, Seed: 1,
				Workers: workers,
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := fedmigr.Run(o); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchTelemetryOptions is the workload for the telemetry-overhead pair
// below: a full FedMigr run (migrations, aggregations, evaluations) small
// enough to iterate.
func benchTelemetryOptions() fedmigr.Options {
	return fedmigr.Options{
		Scheme: fedmigr.SchemeFedMigr, Migrator: fedmigr.MigratorGreedyEMD,
		Model: fedmigr.ModelMLP, Clients: 10, LANs: 3,
		PerClass: 10, Epochs: 10, AggEvery: 5, Seed: 1,
	}
}

// BenchmarkTrainerTelemetryOff is the trainer hot path with telemetry
// disabled (nil handles — the default every caller pays for).
func BenchmarkTrainerTelemetryOff(b *testing.B) {
	o := benchTelemetryOptions()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := fedmigr.Run(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrainerTelemetryOn is the identical run with a live registry
// and a discarded JSONL sink. Comparing against ...Off bounds the cost of
// the instrumentation; the disabled path must stay within a few percent
// of pre-telemetry performance (nil-receiver no-ops).
func BenchmarkTrainerTelemetryOn(b *testing.B) {
	o := benchTelemetryOptions()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tel := telemetry.New()
		tel.SetSink(io.Discard)
		o.Telemetry = tel
		if _, err := fedmigr.Run(o); err != nil {
			b.Fatal(err)
		}
	}
}
