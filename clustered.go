package fedmigr

import (
	"fmt"

	"fedmigr/internal/checkpoint"
	"fedmigr/internal/cluster"
	"fedmigr/internal/core"
	"fedmigr/internal/data"
	"fedmigr/internal/edgenet"
	"fedmigr/internal/fleet"
	"fedmigr/internal/nn"
	"fedmigr/internal/sched"
	"fedmigr/internal/stats"
)

// ClusteredOptions configures a clustered-federation run: ONE dataset
// partitioned once over the shared clients, grouped by label-distribution
// EMD into Clusters cluster models that train concurrently as fleet jobs.
// Unlike FleetOptions — where every job brings its own dataset — all
// clusters here share the same partition; they differ only in which
// clients feed which model.
type ClusteredOptions struct {
	// Clusters is the number of cluster models k (default 3, clamped to
	// the client count).
	Clusters int
	// ReclusterEvery re-evaluates the client→cluster assignment every that
	// many fleet rounds, migrating clients whose label distribution has
	// drifted nearer another cluster's representative (0 = the initial
	// grouping is final).
	ReclusterEvery int
	// Rounds is each cluster model's round budget (default 20).
	Rounds int
	// MaxHydrated caps the summed per-round demand across cluster jobs
	// (0 disables admission control).
	MaxHydrated int

	// Options carries the shared training configuration: dataset,
	// partition, model, scheme, hyper-parameters, Workers, Seed. CohortSize
	// composes: each cluster samples min(CohortSize, members) clients per
	// round through the fleet allocator. Faults applies fleet-wide.
	Options
}

func (o ClusteredOptions) withDefaults() ClusteredOptions {
	if o.Clusters <= 0 {
		o.Clusters = 3
	}
	if o.Rounds <= 0 {
		o.Rounds = 20
	}
	o.Options = o.Options.withDefaults()
	return o
}

// Clustered is an assembled clustered-federation simulation: a
// cluster.Manager owning the assignment over a fleet.Manager whose jobs
// ("cluster-0" … "cluster-k-1") carry the per-cluster models.
type Clustered struct {
	Manager  *cluster.Manager
	Fleet    *fleet.Manager
	Test     *data.Dataset
	Topology *edgenet.Topology
	Cost     *edgenet.CostModel
	Options  ClusteredOptions

	names []string
	pool  *sched.Pool
}

// NewClustered assembles a clustered run: build the shared partition,
// cluster clients by pairwise label-distribution EMD (seeded k-medoids),
// submit one fleet job per cluster — same model factory and seed, so every
// cluster starts from identical weights and diverges only through its
// members' data — and bind the cluster manager over them.
func NewClustered(o ClusteredOptions) (*Clustered, error) {
	o = o.withDefaults()
	base := o.Options

	train, test, spec, err := buildDataset(base)
	if err != nil {
		return nil, err
	}
	parts, topo, err := partition(base, train)
	if err != nil {
		return nil, err
	}
	dists := make([]stats.Distribution, base.Clients)
	samples := make([]int, base.Clients)
	for i, p := range parts {
		dists[i] = p.LabelDistribution()
		samples[i] = p.Len()
	}
	cm, err := cluster.New(cluster.Config{
		Clusters: o.Clusters, ReclusterEvery: o.ReclusterEvery, Seed: base.Seed + 17,
	}, dists, samples)
	if err != nil {
		return nil, err
	}
	cm.SetTelemetry(base.Telemetry)

	cost := base.Cost
	if cost == nil {
		cost = edgenet.DefaultCostModel()
		cost.Jitter = 0.1
		cost.Seed(base.Seed + 7)
	}
	pool := sched.New(base.Workers)
	fm, err := fleet.New(fleet.Config{
		MaxHydrated: o.MaxHydrated, Seed: base.Seed,
	}, topo, cost, base.Faults, pool)
	if err != nil {
		pool.Close()
		return nil, err
	}
	fm.SetTelemetry(base.Telemetry)

	c := &Clustered{
		Manager: cm, Fleet: fm, Test: test, Topology: topo, Cost: cost,
		Options: o, pool: pool,
	}
	factory, err := buildFactory(base, spec)
	if err != nil {
		c.Close()
		return nil, err
	}
	for ci := 0; ci < cm.K(); ci++ {
		tr, err := clusterTrainer(base, parts, test, topo, cost, factory, pool)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("fedmigr: cluster %d: %w", ci, err)
		}
		members := cm.Members(ci)
		demand := len(members)
		if base.CohortSize > 0 && base.CohortSize < demand {
			demand = base.CohortSize
		}
		name := fmt.Sprintf("cluster-%d", ci)
		if _, err := fm.Submit(fleet.JobConfig{
			Name: name, Demand: demand, Rounds: o.Rounds,
			Samples: samples, Members: members,
		}, tr); err != nil {
			tr.Close()
			c.Close()
			return nil, fmt.Errorf("fedmigr: cluster %d: %w", ci, err)
		}
		c.names = append(c.names, name)
	}
	if err := cm.Bind(fm, c.names); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// clusterTrainer builds one cluster job's trainer over the SHARED
// partition: every cluster's trainer spans all K clients (membership is
// enforced by the fleet allocator), lazily hydrated on the shared pool,
// with the same seed — identical initial weights across clusters.
func clusterTrainer(base Options, parts []*data.Dataset, test *data.Dataset,
	topo *edgenet.Topology, cost *edgenet.CostModel, factory core.ModelFactory,
	pool *sched.Pool) (*core.Trainer, error) {
	clients := make([]*core.Client, len(parts))
	for i, p := range parts {
		clients[i] = &core.Client{ID: i, Data: p}
	}
	mig, err := buildMigrator(base, topo)
	if err != nil {
		return nil, err
	}
	mech, err := buildPrivacy(base)
	if err != nil {
		return nil, err
	}
	cfg := coreConfig(base, mech)
	cfg.CohortSize = 0 // the fleet allocator IS the cohort sampler
	cfg.Faults = nil   // the manager owns fault interpretation
	cfg.LazyHydration = true
	cfg.Pool = pool
	tr, err := core.NewTrainer(cfg, clients, topo, cost, test, factory, mig)
	if err != nil {
		return nil, err
	}
	tr.SetTelemetry(base.Telemetry)
	return tr, nil
}

// Run drives fleet rounds (with cluster re-evaluation on the configured
// cadence) until every cluster model exhausts its budget or maxRounds
// elapse (0 = unbounded). Returns the rounds executed.
func (c *Clustered) Run(maxRounds int) int { return c.Manager.Run(maxRounds) }

// RunRound steps one fleet round, returning the number of jobs served.
func (c *Clustered) RunRound() int { return c.Manager.RunRound() }

// Models returns the per-cluster global models, cluster order.
func (c *Clustered) Models() []*nn.Sequential {
	out := make([]*nn.Sequential, len(c.names))
	for i, name := range c.names {
		out[i] = c.Fleet.Job(name).Trainer.GlobalModel()
	}
	return out
}

// Evaluate scores the clustered federation on the shared test set. Each
// test sample is routed to the cluster whose representative label
// distribution weights the sample's label highest (ties to the lowest
// cluster) and scored under THAT cluster's model; overall is the routed
// accuracy, perCluster[k] is cluster k's own accuracy over the full test
// set. Routed accuracy is the clustered counterpart of a single global
// model's accuracy: one number over the whole test set, achievable by a
// deployment that knows only each client's label mix.
func (c *Clustered) Evaluate() (overall float64, perCluster []float64) {
	models := c.Models()
	reps := c.Manager.Representatives()
	route := make([]int, c.Test.Classes)
	for l := range route {
		best := 0
		for k := 1; k < len(reps); k++ {
			if reps[k][l] > reps[best][l] {
				best = k
			}
		}
		route[l] = best
	}

	perCluster = make([]float64, len(models))
	routedHits := 0
	n := c.Test.Len()
	for lo := 0; lo < n; lo += 256 {
		hi := lo + 256
		if hi > n {
			hi = n
		}
		x, labels := c.Test.Batch(lo, hi)
		for k, m := range models {
			logits := m.Forward(x, false)
			perCluster[k] += nn.Accuracy(logits, labels) * float64(hi-lo)
			rows, classes := logits.Dim(0), logits.Dim(1)
			ld := logits.Data()
			for r := 0; r < rows; r++ {
				if route[labels[r]] != k {
					continue
				}
				argmax, row := 0, ld[r*classes:(r+1)*classes]
				for j, v := range row {
					if v > row[argmax] {
						argmax = j
					}
				}
				if argmax == labels[r] {
					routedHits++
				}
			}
		}
	}
	for k := range perCluster {
		perCluster[k] /= float64(n)
	}
	return float64(routedHits) / float64(n), perCluster
}

// Close releases every cluster trainer and the shared pool.
func (c *Clustered) Close() {
	for _, j := range c.Fleet.Jobs() {
		if j.Trainer != nil {
			j.Trainer.Close()
		}
	}
	c.pool.Close()
}

// SaveState persists the clustered run to dir as a version-2 fleet state
// (one model subdirectory per cluster job) plus the version-4 cluster
// manifest recording the client→cluster assignment — written last, as the
// clustered commit point.
func (c *Clustered) SaveState(dir string) error {
	jobs := make(map[string]checkpoint.FleetJobState, len(c.names))
	for _, j := range c.Fleet.Jobs() {
		jobs[j.Cfg.Name] = checkpoint.FleetJobState{
			Model:   j.Trainer.GlobalModel(),
			History: j.History,
			Progress: checkpoint.JobProgress{
				Epoch: j.Trainer.Epoch(), Round: j.RoundsDone,
			},
		}
	}
	if err := checkpoint.SaveFleetState(dir, c.Fleet.Round(), jobs); err != nil {
		return err
	}
	return checkpoint.SaveClusterManifest(dir, checkpoint.ClusterManifest{
		Clusters:       c.Manager.K(),
		ReclusterEvery: c.Options.ReclusterEvery,
		Seed:           c.Options.Seed + 17,
		Round:          c.Fleet.Round(),
		Assign:         c.Manager.Assignments(),
		Medoids:        c.Manager.Medoids(),
		Moves:          c.Manager.Moves(),
		HandoffBytes:   c.Manager.HandoffBytes(),
	})
}

// RestoreState resumes a freshly assembled clustered run from a SaveState
// checkpoint: per-cluster models, histories and round counters, the fleet
// scheduling state, and the saved client→cluster assignment (cluster jobs
// are rebound to the checkpointed membership, which may differ from the
// fresh k-medoids grouping if the saved run had reclustered). A checkpoint
// without a cluster manifest is refused — restoring cluster models without
// their assignment would silently regroup clients from scratch.
func (c *Clustered) RestoreState(dir string) error {
	man, err := checkpoint.LoadClusterManifest(dir)
	if err != nil {
		return err
	}
	if man == nil {
		return fmt.Errorf("fedmigr: %s is not a clustered checkpoint (no %s)", dir, checkpoint.ClusterFile)
	}
	if man.Clusters != c.Manager.K() {
		return fmt.Errorf("fedmigr: checkpoint has %d clusters, run has %d", man.Clusters, c.Manager.K())
	}
	models := make(map[string]*nn.Sequential, len(c.names))
	for _, j := range c.Fleet.Jobs() {
		models[j.Cfg.Name] = j.Trainer.GlobalModel()
	}
	fman, histories, err := checkpoint.LoadFleetState(dir, models)
	if err != nil {
		return err
	}
	roundsDone := make(map[string]int, len(fman.Jobs))
	for name, p := range fman.Jobs {
		j := c.Fleet.Job(name)
		if j == nil {
			return fmt.Errorf("fedmigr: checkpoint job %q not in clustered run", name)
		}
		if err := j.Trainer.Restore(p.Epoch, p.Round); err != nil {
			return fmt.Errorf("fedmigr: job %q: %w", name, err)
		}
		j.History = append(j.History[:0], histories[name]...)
		roundsDone[name] = p.Round
	}
	if err := c.Fleet.Restore(fman.Round, roundsDone); err != nil {
		return err
	}
	return c.Manager.Restore(man.Assign, man.Medoids, man.Moves, man.HandoffBytes)
}
