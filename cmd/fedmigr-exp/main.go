// Command fedmigr-exp regenerates the paper's tables and figures.
//
// Usage:
//
//	fedmigr-exp -list
//	fedmigr-exp -id fig3 [-scale 1.0] [-seed 1]
//	fedmigr-exp -all
//
// Each experiment prints an aligned text table with the same rows/series
// the paper reports, plus notes stating the paper's expected shape.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"fedmigr/internal/experiments"
)

func main() {
	var (
		id    = flag.String("id", "", "experiment id to run (fig3, tab1, …)")
		all   = flag.Bool("all", false, "run every experiment")
		list  = flag.Bool("list", false, "list available experiments")
		scale = flag.Float64("scale", 1.0, "workload scale factor (1 = laptop scale)")
		seed  = flag.Int64("seed", 1, "deterministic seed")
		asCSV = flag.Bool("csv", false, "emit CSV instead of an aligned table")
	)
	flag.Parse()

	switch {
	case *list:
		for _, eid := range experiments.IDs() {
			e, _ := experiments.Get(eid)
			fmt.Printf("%-6s %s\n", eid, e.Title())
		}
	case *all:
		params := experiments.Params{Scale: *scale, Seed: *seed}
		for _, e := range experiments.All() {
			start := time.Now()
			rep, err := e.Run(params)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID(), err)
				os.Exit(1)
			}
			rep.Print(os.Stdout)
			fmt.Printf("[%s finished in %v]\n\n", e.ID(), time.Since(start).Round(time.Millisecond))
		}
	case *id != "":
		e, ok := experiments.Get(*id)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *id)
			os.Exit(2)
		}
		rep, err := e.Run(experiments.Params{Scale: *scale, Seed: *seed})
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", *id, err)
			os.Exit(1)
		}
		if *asCSV {
			if err := rep.WriteCSV(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		} else {
			rep.Print(os.Stdout)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}
