package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module named fedmigr so the loader's
// import-path derivation puts files under the analyzers' real zones.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	files["go.mod"] = "module fedmigr\n\ngo 1.24\n"
	for rel, src := range files {
		path := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

const dirtyCore = `package core

import "time"

func Stamp() int64 {
	return time.Now().UnixNano()
}
`

const cleanCore = `package core

func Stamp() int64 {
	return 42
}
`

func TestRunFindingsExitOne(t *testing.T) {
	t.Chdir(writeModule(t, map[string]string{
		"internal/core/bad.go": dirtyCore,
	}))
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "time.Now") || !strings.Contains(stdout.String(), "(determinism)") {
		t.Errorf("stdout missing determinism finding:\n%s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "finding(s)") {
		t.Errorf("stderr missing summary line: %s", stderr.String())
	}
}

func TestRunCleanExitZero(t *testing.T) {
	t.Chdir(writeModule(t, map[string]string{
		"internal/core/ok.go": cleanCore,
	}))
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0; stdout: %s stderr: %s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean run wrote findings: %s", stdout.String())
	}
}

func TestRunJSONOutput(t *testing.T) {
	t.Chdir(writeModule(t, map[string]string{
		"internal/core/bad.go": dirtyCore,
	}))
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json", "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, stderr.String())
	}
	var diags []struct {
		Analyzer string `json:"analyzer"`
		File     string `json:"file"`
		Line     int    `json:"line"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &diags); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, stdout.String())
	}
	if len(diags) == 0 || diags[0].Analyzer != "determinism" {
		t.Fatalf("unexpected JSON findings: %+v", diags)
	}
}

func TestRunOnlyFilter(t *testing.T) {
	t.Chdir(writeModule(t, map[string]string{
		"internal/core/bad.go": dirtyCore,
	}))
	var stdout, stderr bytes.Buffer
	// The determinism finding must vanish when only errcheck runs.
	if code := run([]string{"-only", "errcheck", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0; stdout: %s stderr: %s", code, stdout.String(), stderr.String())
	}
}

func TestRunUnknownAnalyzerExitTwo(t *testing.T) {
	t.Chdir(writeModule(t, map[string]string{
		"internal/core/ok.go": cleanCore,
	}))
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-only", "nosuch", "./..."}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown analyzer") {
		t.Errorf("stderr missing diagnosis: %s", stderr.String())
	}
}

func TestRunBadPatternExitTwo(t *testing.T) {
	t.Chdir(writeModule(t, map[string]string{
		"internal/core/ok.go": cleanCore,
	}))
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./no/such/dir"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit = %d, want 2; stderr: %s", code, stderr.String())
	}
}

func TestRunList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, name := range []string{"determinism", "lockcheck", "errcheck", "telemetrynames", "floatcmp"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, stdout.String())
		}
	}
}
