package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module named fedmigr so the loader's
// import-path derivation puts files under the analyzers' real zones.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	files["go.mod"] = "module fedmigr\n\ngo 1.24\n"
	for rel, src := range files {
		path := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

const dirtyCore = `package core

import "time"

func Stamp() int64 {
	return time.Now().UnixNano()
}
`

const cleanCore = `package core

func Stamp() int64 {
	return 42
}
`

func TestRunFindingsExitOne(t *testing.T) {
	t.Chdir(writeModule(t, map[string]string{
		"internal/core/bad.go": dirtyCore,
	}))
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "time.Now") || !strings.Contains(stdout.String(), "(determinism)") {
		t.Errorf("stdout missing determinism finding:\n%s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "finding(s)") {
		t.Errorf("stderr missing summary line: %s", stderr.String())
	}
}

func TestRunCleanExitZero(t *testing.T) {
	t.Chdir(writeModule(t, map[string]string{
		"internal/core/ok.go": cleanCore,
	}))
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0; stdout: %s stderr: %s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean run wrote findings: %s", stdout.String())
	}
}

func TestRunJSONOutput(t *testing.T) {
	t.Chdir(writeModule(t, map[string]string{
		"internal/core/bad.go": dirtyCore,
	}))
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json", "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, stderr.String())
	}
	var diags []struct {
		Analyzer string `json:"analyzer"`
		File     string `json:"file"`
		Line     int    `json:"line"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &diags); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, stdout.String())
	}
	if len(diags) == 0 || diags[0].Analyzer != "determinism" {
		t.Fatalf("unexpected JSON findings: %+v", diags)
	}
}

func TestRunOnlyFilter(t *testing.T) {
	t.Chdir(writeModule(t, map[string]string{
		"internal/core/bad.go": dirtyCore,
	}))
	var stdout, stderr bytes.Buffer
	// The determinism finding must vanish when only errcheck runs.
	if code := run([]string{"-only", "errcheck", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0; stdout: %s stderr: %s", code, stdout.String(), stderr.String())
	}
}

func TestRunUnknownAnalyzerExitTwo(t *testing.T) {
	t.Chdir(writeModule(t, map[string]string{
		"internal/core/ok.go": cleanCore,
	}))
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-only", "nosuch", "./..."}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown analyzer") {
		t.Errorf("stderr missing diagnosis: %s", stderr.String())
	}
}

func TestRunBadPatternExitTwo(t *testing.T) {
	t.Chdir(writeModule(t, map[string]string{
		"internal/core/ok.go": cleanCore,
	}))
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./no/such/dir"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit = %d, want 2; stderr: %s", code, stderr.String())
	}
}

func TestRunList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, name := range []string{
		"determinism", "lockcheck", "errcheck", "telemetrynames", "floatcmp",
		"goroutineleak", "hotalloc", "wireexhaustive",
	} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, stdout.String())
		}
	}
}

// interprocFiles is a module where the in-zone package's impurity is two
// calls deep through helper packages outside every zone.
func interprocFiles() map[string]string {
	return map[string]string{
		"internal/core/step.go": `package core

import "fedmigr/internal/timeutil"

func Step() int64 { return timeutil.Stamp() }
`,
		"internal/timeutil/timeutil.go": `package timeutil

import "fedmigr/internal/clockutil"

func Stamp() int64 { return clockutil.Read() }
`,
		"internal/clockutil/clockutil.go": `package clockutil

import "time"

func Read() int64 { return time.Now().UnixNano() }
`,
	}
}

// TestRunInterprocChain is the CLI half of the acceptance criterion: a
// zone function whose wall-clock read is two helper packages away is
// flagged with the full call chain, and fixing the leaf helper (only)
// turns the identical invocation clean.
func TestRunInterprocChain(t *testing.T) {
	root := writeModule(t, interprocFiles())
	t.Chdir(root)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit = %d, want 1; stdout: %s stderr: %s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "call chain:") {
		t.Errorf("finding lacks a call chain:\n%s", out)
	}
	for _, hop := range []string{"timeutil.Stamp", "clockutil.Read", "time.Now"} {
		if !strings.Contains(out, hop) {
			t.Errorf("call chain missing hop %q:\n%s", hop, out)
		}
	}

	// Fix the leaf; the cached entries for core and timeutil must be
	// invalidated through the chained dependency keys.
	pure := "package clockutil\n\nfunc Read() int64 { return 42 }\n"
	if err := os.WriteFile(filepath.Join(root, "internal/clockutil/clockutil.go"), []byte(pure), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit after fixing helper = %d, want 0; stdout: %s stderr: %s", code, stdout.String(), stderr.String())
	}
}

// TestRunWarmCache asserts the -v stats prove a warm rerun loads nothing
// and reports the same findings.
func TestRunWarmCache(t *testing.T) {
	root := writeModule(t, map[string]string{
		"internal/core/bad.go": dirtyCore,
	})
	t.Chdir(root)
	cacheDir := filepath.Join(root, "cache")
	var out1, err1 bytes.Buffer
	if code := run([]string{"-v", "-cache-dir", cacheDir, "./..."}, &out1, &err1); code != 1 {
		t.Fatalf("cold exit = %d, want 1; stderr: %s", code, err1.String())
	}
	if !strings.Contains(err1.String(), "0 from cache") {
		t.Errorf("cold stats should report 0 from cache: %s", err1.String())
	}
	var out2, err2 bytes.Buffer
	if code := run([]string{"-v", "-cache-dir", cacheDir, "./..."}, &out2, &err2); code != 1 {
		t.Fatalf("warm exit = %d, want 1; stderr: %s", code, err2.String())
	}
	if !strings.Contains(err2.String(), "0 loaded") {
		t.Errorf("warm stats should report 0 loaded: %s", err2.String())
	}
	if out1.String() != out2.String() {
		t.Errorf("warm findings differ from cold:\ncold: %s\nwarm: %s", out1.String(), out2.String())
	}
}

// TestRunSARIF checks -sarif writes a parseable SARIF 2.1.0 log with the
// finding bound to a repository-relative path.
func TestRunSARIF(t *testing.T) {
	root := writeModule(t, map[string]string{
		"internal/core/bad.go": dirtyCore,
	})
	t.Chdir(root)
	sarifPath := filepath.Join(root, "lint.sarif")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-sarif", sarifPath, "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, stderr.String())
	}
	b, err := os.ReadFile(sarifPath)
	if err != nil {
		t.Fatal(err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Results []struct {
				RuleID    string `json:"ruleId"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(b, &log); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v\n%s", err, b)
	}
	if log.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", log.Version)
	}
	if len(log.Runs) != 1 || len(log.Runs[0].Results) == 0 {
		t.Fatalf("SARIF log has no results: %s", b)
	}
	r := log.Runs[0].Results[0]
	if r.RuleID != "determinism" {
		t.Errorf("ruleId = %q, want determinism", r.RuleID)
	}
	if uri := r.Locations[0].PhysicalLocation.ArtifactLocation.URI; uri != "internal/core/bad.go" {
		t.Errorf("uri = %q, want module-relative internal/core/bad.go", uri)
	}
}
