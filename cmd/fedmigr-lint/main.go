// fedmigr-lint runs the repository's project-specific static analyzers
// (internal/analysis/analyzers) over Go package patterns and exits
// non-zero on findings, making the runtime's hand-written invariants —
// determinism zones, lock discipline, error handling, telemetry naming,
// float comparison hygiene — build-time checks instead of flaky test
// failures.
//
// Usage:
//
//	fedmigr-lint [-json] [-only a,b] [-list] [patterns...]
//
// Patterns default to ./... and follow go-tool shape ("./...",
// "./internal/fednet", "./internal/..."); testdata and vendor trees are
// always pruned. Exit codes: 0 clean, 1 findings, 2 usage or load error.
//
// Findings can be suppressed in place, one line at a time, with
//
//	//lint:ignore <analyzer>[,<analyzer>] <reason>
//
// on the offending line or the line above; the reason is mandatory and
// a malformed directive is itself a finding.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"fedmigr/internal/analysis"
	"fedmigr/internal/analysis/analyzers"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fedmigr-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array (one finding per line)")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list registered analyzers and exit")
	verbose := fs.Bool("v", false, "also print soft type-check errors to stderr")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	regs := analyzers.All()
	if *list {
		for _, a := range regs {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		keep := map[string]bool{}
		for _, n := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(n)] = true
		}
		var sel []*analysis.Analyzer
		for _, a := range regs {
			if keep[a.Name] {
				sel = append(sel, a)
				delete(keep, a.Name)
			}
		}
		for n := range keep {
			fmt.Fprintf(stderr, "fedmigr-lint: unknown analyzer %q (see -list)\n", n)
			return 2
		}
		regs = sel
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader := analysis.NewLoader()
	pkgs, err := loader.Load(patterns)
	if err != nil {
		fmt.Fprintf(stderr, "fedmigr-lint: %v\n", err)
		return 2
	}
	if *verbose {
		for _, p := range pkgs {
			for _, te := range p.TypeErrors {
				fmt.Fprintf(stderr, "fedmigr-lint: typecheck %s: %v\n", p.ImportPath, te)
			}
		}
	}

	diags := analysis.Run(pkgs, regs)
	if *jsonOut {
		if err := analysis.WriteJSON(stdout, diags); err != nil {
			fmt.Fprintf(stderr, "fedmigr-lint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "fedmigr-lint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}
