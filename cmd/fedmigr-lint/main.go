// fedmigr-lint runs the repository's project-specific static analyzers
// (internal/analysis/analyzers) over Go package patterns and exits
// non-zero on findings, making the runtime's hand-written invariants —
// determinism zones, lock discipline, error handling, telemetry naming,
// float comparison hygiene, goroutine lifecycle, kernel allocation
// discipline and wire-protocol exhaustiveness — build-time checks
// instead of flaky test failures. The engine is interprocedural: facts
// (impurity, blocking, completion signals) propagate bottom-up through
// the whole-module call graph, so a violation is caught through any call
// chain into a zone and reported with that chain.
//
// Usage:
//
//	fedmigr-lint [-json] [-sarif out.sarif] [-only a,b] [-all-zones]
//	             [-cache-dir dir] [-no-cache] [-list] [patterns...]
//
// Patterns default to ./... and follow go-tool shape ("./...",
// "./internal/fednet", "./internal/..."); testdata and vendor trees are
// always pruned. Exit codes: 0 clean, 1 findings, 2 usage or load error.
//
// Runs are incremental: per-package facts and findings are cached under
// -cache-dir (default <module>/.lintcache), keyed by source hashes
// chained through the import graph, so a warm run on an unchanged tree
// loads nothing. -no-cache forces a cold run.
//
// Findings can be suppressed in place, one line at a time, with
//
//	//lint:ignore <analyzer>[,<analyzer>] <reason>
//
// on the offending line or the line above; the reason is mandatory and
// a malformed directive is itself a finding.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"fedmigr/internal/analysis"
	"fedmigr/internal/analysis/analyzers"
	"fedmigr/internal/sched"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fedmigr-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array (one finding per line)")
	sarifOut := fs.String("sarif", "", "also write findings as SARIF 2.1.0 to this file")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	allZones := fs.Bool("all-zones", false, "disable package-path gating: run every analyzer on every package")
	cacheDir := fs.String("cache-dir", "", "incremental cache directory (default <module>/.lintcache)")
	noCache := fs.Bool("no-cache", false, "disable the incremental cache")
	list := fs.Bool("list", false, "list registered analyzers and exit")
	verbose := fs.Bool("v", false, "print cache statistics to stderr")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	regs := analyzers.All()
	if *list {
		for _, a := range regs {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		keep := map[string]bool{}
		for _, n := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(n)] = true
		}
		var sel []*analysis.Analyzer
		for _, a := range regs {
			if keep[a.Name] {
				sel = append(sel, a)
				delete(keep, a.Name)
			}
		}
		for n := range keep {
			fmt.Fprintf(stderr, "fedmigr-lint: unknown analyzer %q (see -list)\n", n)
			return 2
		}
		regs = sel
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	dir := *cacheDir
	if dir == "" && !*noCache {
		root, err := analysis.ModuleRoot(".")
		if err != nil {
			fmt.Fprintf(stderr, "fedmigr-lint: %v\n", err)
			return 2
		}
		dir = filepath.Join(root, ".lintcache")
	}
	if *noCache {
		dir = ""
	}

	pool := sched.New(runtime.NumCPU())
	defer pool.Close()
	res, err := analysis.Lint(patterns, regs, analysis.Options{
		CacheDir: dir,
		Loader:   analysis.NewLoader().WithPool(pool),
		AllZones: *allZones,
	})
	if err != nil {
		fmt.Fprintf(stderr, "fedmigr-lint: %v\n", err)
		return 2
	}
	if *verbose {
		fmt.Fprintf(stderr, "fedmigr-lint: %d package(s): %d loaded, %d from cache\n",
			res.Stats.Packages, res.Stats.Loaded, res.Stats.Cached)
	}

	diags := res.Diags
	if *sarifOut != "" {
		root, _ := analysis.ModuleRoot(".")
		f, err := os.Create(*sarifOut)
		if err != nil {
			fmt.Fprintf(stderr, "fedmigr-lint: %v\n", err)
			return 2
		}
		werr := analysis.WriteSARIF(f, diags, regs, root)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(stderr, "fedmigr-lint: sarif: %v\n", werr)
			return 2
		}
	}
	if *jsonOut {
		if err := analysis.WriteJSON(stdout, diags); err != nil {
			fmt.Fprintf(stderr, "fedmigr-lint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "fedmigr-lint: %d finding(s) in %d package(s)\n", len(diags), res.Stats.Packages)
		return 1
	}
	return 0
}
