// Command fedmigr-node runs one node of a *real* distributed FedMigr
// deployment over TCP: either the parameter server or a client. Unlike
// fedmigr-sim (which simulates transfers through a cost model), every
// model here actually crosses the network — C2S to the server, C2C
// directly between client listeners during migration.
//
// Start a server and ten clients (in ten shells, or via & in one):
//
//	fedmigr-node -role server -listen 127.0.0.1:7070 -clients 10 -rounds 4 -agg 5
//	for i in $(seq 0 9); do
//	  fedmigr-node -role client -server 127.0.0.1:7070 -shard $i -shards 10 &
//	done
//
// Every node derives its data shard deterministically from -seed, -shards
// and -shard, so no dataset files need distributing.
//
// Observability: -trace streams JSONL telemetry records to a file and
// -debug-addr serves /metrics, /trace and /debug/pprof/ over HTTP (see
// README.md "Observability"). SIGINT/SIGTERM shut the node down cleanly:
// in-flight network operations are unblocked and the process exits after
// flushing telemetry.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fedmigr/internal/core"
	"fedmigr/internal/data"
	"fedmigr/internal/faults"
	"fedmigr/internal/fednet"
	"fedmigr/internal/nn"
	"fedmigr/internal/sched"
	"fedmigr/internal/telemetry"
	"fedmigr/internal/tensor"
)

func main() {
	var (
		role      = flag.String("role", "", "server|client|aggregator")
		listen    = flag.String("listen", "127.0.0.1:7070", "server: address to listen on; client/aggregator: upload/peer listen address (default ephemeral)")
		server    = flag.String("server", "127.0.0.1:7070", "client/aggregator: server address to join")
		clients   = flag.Int("clients", 4, "server: number of clients to wait for")
		maxCli    = flag.Int("max-clients", 0, "server: cohort cap for mid-session joins — nodes dialing in after the session starts are admitted with a warm model handoff until this many slots fill (0 = closed membership at -clients)")
		nAggs     = flag.Int("aggregators", 0, "server: edge aggregators to register; clients then upload to their LAN aggregator and the server folds O(A·log K) partial sums per round")
		rounds    = flag.Int("rounds", 4, "server: global iterations G")
		agg       = flag.Int("agg", 5, "server: events per global iteration")
		tau       = flag.Int("tau", 1, "server: local epochs per event")
		batch     = flag.Int("batch", 8, "server: client mini-batch size")
		lr        = flag.Float64("lr", 0.05, "server: client learning rate")
		policy    = flag.String("policy", "greedy", "server: migration policy (greedy|random|stay)")
		shard     = flag.Int("shard", 0, "client: this node's shard index")
		shards    = flag.Int("shards", 4, "client: total shards (= number of clients)")
		classes   = flag.Int("classes", 10, "synthetic dataset classes")
		perClass  = flag.Int("perclass", 20, "synthetic samples per class")
		noise     = flag.Float64("noise", 1.2, "synthetic within-class noise")
		seed      = flag.Int64("seed", 3, "shared deterministic seed")
		timeout   = flag.Duration("timeout", 60*time.Second, "per-frame I/O timeout (unresponsive peers are declared dead)")
		retries   = flag.Int("dial-retries", 3, "client: dial re-attempts with exponential backoff (-1 disables)")
		backoff   = flag.Duration("retry-backoff", 50*time.Millisecond, "client: base backoff before the first dial retry")
		minAlive  = flag.Int("min-clients", 1, "server: quorum — abort when fewer clients remain alive")
		leaveAft  = flag.Int("leave-after", 0, "client: leave the session gracefully after this many local epochs, migrating in-flight training state to the server for adoption (0 = stay)")
		jobID     = flag.String("job", "", "fleet job this node belongs to; a server keyed to a job turns away peers carrying any other id (empty = legacy single-job session)")
		workers   = flag.Int("workers", 0, "parallel workers for local tensor kernels (0 = NumCPU, 1 = serial; results are identical for any value)")
		tracePath = flag.String("trace", "", "write JSONL telemetry records to this file")
		debugAddr = flag.String("debug-addr", "", "serve /metrics, /trace and /debug/pprof/ on this address")
	)
	flag.Parse()

	tel, cleanup, err := setupTelemetry(*tracePath, *debugAddr)
	if err != nil {
		fatal(err)
	}
	defer cleanup()

	// Local training and evaluation run their tensor kernels through a
	// shared scheduler pool; parallelism is a wall-clock optimization only
	// (kernels are bit-deterministic for any worker count).
	pool := sched.New(*workers)
	pool.SetTelemetry(tel)
	tensor.InstallPool(pool)

	// Graceful shutdown: the first SIGINT/SIGTERM cancels ctx; a second
	// signal kills the process the default way.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	factory := func() *nn.Sequential {
		g := tensor.NewRNG(*seed + 11)
		return nn.NewSequential(
			nn.NewFlatten(),
			nn.NewDense(g, 3*8*8, 32), nn.NewReLU(),
			nn.NewDense(g, 32, *classes),
		)
	}

	switch *role {
	case "server":
		mig, err := parsePolicy(*policy)
		if err != nil {
			fatal(err)
		}
		srv, err := fednet.NewServer(fednet.ServerConfig{
			K: *clients, MaxClients: *maxCli, Rounds: *rounds, AggEvery: *agg, Tau: *tau,
			BatchSize: *batch, LR: *lr, IOTimeout: *timeout,
			MinClients: *minAlive, Aggregators: *nAggs, Telemetry: tel,
			JobID: *jobID,
		}, factory, mig)
		if err != nil {
			fatal(err)
		}
		addr, err := srv.Listen(*listen)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Printf("fedmigr server on %s waiting for %d clients and %d aggregators\n", addr, *clients, *nAggs)
		if *maxCli > *clients {
			fmt.Printf("open membership: late joins accepted up to %d clients\n", *maxCli)
		}
		if err := runUntilSignal(ctx, srv.Run, srv.Close); err != nil {
			fatal(err)
		}
		tel.EmitSnapshot()
		fmt.Println("per-round mean loss:")
		for r, l := range srv.History {
			fmt.Printf("  round %d: %.4f\n", r+1, l)
		}
		if st := srv.Stats(); st.DeadClients+st.Reroutes+st.LostModels+st.PartialRounds > 0 {
			fmt.Printf("faults handled: dead=%d reroutes=%d lost=%d partial_rounds=%d\n",
				st.DeadClients, st.Reroutes, st.LostModels, st.PartialRounds)
		}
		if st := srv.Stats(); st.Joins+st.Leaves+st.StateMigrations > 0 {
			fmt.Printf("churn handled: joins=%d leaves=%d state_migrations=%d\n",
				st.Joins, st.Leaves, st.StateMigrations)
		}

	case "client":
		if *shard < 0 || *shard >= *shards {
			fatal(fmt.Errorf("shard %d outside [0,%d)", *shard, *shards))
		}
		train, _ := data.Synthetic(data.SyntheticConfig{
			Classes: *classes, Channels: 3, Height: 8, Width: 8,
			PerClass: *perClass, Noise: *noise, Seed: *seed,
		})
		parts := data.PartitionShards(train, *shards, 1, tensor.NewRNG(*seed))
		cfgListen := ""
		if *listen != "127.0.0.1:7070" {
			cfgListen = *listen
		}
		var nf *faults.NodeFaults
		if *leaveAft > 0 {
			nf = &faults.NodeFaults{LeaveAfterEpochs: *leaveAft}
		}
		c, err := fednet.NewClient(fednet.ClientConfig{
			ServerAddr: *server, ListenAddr: cfgListen, IOTimeout: *timeout,
			DialRetries: *retries, RetryBackoff: *backoff, Telemetry: tel,
			JobID: *jobID, Faults: nf,
		}, parts[*shard], factory)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("fedmigr client shard %d/%d joining %s\n", *shard, *shards, *server)
		if err := runUntilSignal(ctx, c.Run, c.Close); err != nil {
			fatal(err)
		}
		tel.EmitSnapshot()
		fmt.Printf("client %d done: %d local epochs, %d models migrated out\n",
			c.ID(), c.Epochs, c.Migrations)
		if c.Left {
			fmt.Println("left the session gracefully; in-flight state migrated for adoption")
		}
		if c.Adopted > 0 {
			fmt.Printf("adopted %d in-flight training states from departing peers\n", c.Adopted)
		}

	case "aggregator":
		cfgListen := ""
		if *listen != "127.0.0.1:7070" {
			cfgListen = *listen
		}
		ag, err := fednet.NewAggregator(fednet.AggregatorConfig{
			ServerAddr: *server, ListenAddr: cfgListen, IOTimeout: *timeout,
			DialRetries: *retries, RetryBackoff: *backoff, Telemetry: tel,
			JobID: *jobID,
		}, factory)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("fedmigr aggregator joining %s\n", *server)
		if err := runUntilSignal(ctx, ag.Run, ag.Close); err != nil {
			fatal(err)
		}
		tel.EmitSnapshot()
		rnds, ups, nodes, peak := ag.Snapshot()
		fmt.Printf("aggregator %d done: %d rounds, %d uploads folded into %d partial sums (peak %d live buffers)\n",
			ag.ID(), rnds, ups, nodes, peak)

	default:
		fmt.Fprintln(os.Stderr, "usage: fedmigr-node -role server|client|aggregator [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}
}

// runUntilSignal runs the blocking session and, if ctx is cancelled first,
// closes the node so the session unblocks and returns. An interrupted run
// is reported as an error mentioning the shutdown cause.
func runUntilSignal(ctx context.Context, run func() error, closeFn func()) error {
	done := make(chan error, 1)
	go func() { done <- run() }()
	select {
	case err := <-done:
		return err
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "fedmigr-node: signal received, shutting down")
		closeFn()
		err := <-done
		if err != nil {
			return fmt.Errorf("interrupted: %w", err)
		}
		return nil
	}
}

// setupTelemetry builds the node's telemetry (nil when both flags are
// empty), attaching the JSONL sink and debug HTTP surface when requested.
// The returned cleanup flushes and closes the trace file.
func setupTelemetry(tracePath, debugAddr string) (*telemetry.Telemetry, func(), error) {
	if tracePath == "" && debugAddr == "" {
		return nil, func() {}, nil
	}
	tel := telemetry.New()
	cleanup := func() {}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return nil, nil, fmt.Errorf("telemetry trace: %w", err)
		}
		tel.SetSink(f)
		cleanup = func() { _ = f.Close() }
	}
	if debugAddr != "" {
		go func() {
			if err := http.ListenAndServe(debugAddr, telemetry.Handler(tel)); err != nil {
				fmt.Fprintln(os.Stderr, "fedmigr-node: debug server:", err)
			}
		}()
		fmt.Printf("debug surface on http://%s/ (metrics, trace, pprof)\n", debugAddr)
	}
	return tel, cleanup, nil
}

func parsePolicy(name string) (core.Migrator, error) {
	switch name {
	case "greedy":
		return &core.GreedyEMDMigrator{}, nil
	case "random":
		return core.NewRandomMigrator(1), nil
	case "stay":
		return core.StayMigrator{}, nil
	default:
		return nil, fmt.Errorf("unknown policy %q (want greedy|random|stay)", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fedmigr-node:", err)
	os.Exit(1)
}
