// Command fedmigr-sim runs a single federated-training simulation with
// full control over the scheme, workload, partition and budgets, printing
// the accuracy/loss trajectory and the final resource accounting.
//
// Examples:
//
//	fedmigr-sim -scheme fedmigr -migrator greedy -epochs 60 -agg 5
//	fedmigr-sim -scheme fedavg -dataset c100 -clients 20 -lans 5
//	fedmigr-sim -scheme randmigr -partition dominance -level 0.6 -target 0.8
//
// Observability: -trace streams JSONL telemetry (round events, migration
// events, spans, a final metrics snapshot) to a file, and -debug-addr
// serves /metrics, /trace and /debug/pprof/ over HTTP while the run is in
// progress. See README.md "Observability".
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"

	fedmigr "fedmigr"
	"fedmigr/internal/checkpoint"
	"fedmigr/internal/core"
	"fedmigr/internal/faults"
	"fedmigr/internal/nn"
	"fedmigr/internal/telemetry"
)

func main() {
	var (
		scheme    = flag.String("scheme", "fedmigr", "fedavg|fedprox|fedswap|randmigr|fedmigr")
		dataset   = flag.String("dataset", "c10", "c10|c100|inet100")
		partition = flag.String("partition", "shards", "iid|shards|dominance|lan|dirichlet|replicate")
		model     = flag.String("model", "mlp", "c10cnn|c100cnn|reslite|mlp")
		migrator  = flag.String("migrator", "greedy", "drl|random|greedy|optimal|cross|within|stay")
		clients   = flag.Int("clients", 10, "number of clients K")
		lans      = flag.Int("lans", 3, "number of LANs")
		perClass  = flag.Int("perclass", 20, "training samples per class")
		noise     = flag.Float64("noise", 1.6, "synthetic within-class noise")
		level     = flag.Float64("level", 0.6, "dominance non-IID level p")
		epochs    = flag.Int("epochs", 40, "max training epochs")
		agg       = flag.Int("agg", 5, "events per global iteration (aggregation period)")
		tau       = flag.Int("tau", 1, "local epochs per event")
		lr        = flag.Float64("lr", 0.05, "learning rate")
		batch     = flag.Int("batch", 32, "mini-batch size")
		target    = flag.Float64("target", 0, "target accuracy (0 = run all epochs)")
		bwBudget  = flag.Int64("bw-budget", 0, "bandwidth budget in bytes (0 = unlimited)")
		timeBdg   = flag.Float64("time-budget", 0, "simulated time budget in seconds")
		epsilon   = flag.Float64("epsilon", 0, "LDP privacy budget (0 = off)")
		cohort    = flag.Int("cohort", 0, "per-round participant cohort (0 = every client trains every round; >0 samples that many and keeps only their models hydrated — O(cohort) memory)")
		minCohort = flag.Int("min-cohort", 0, "cohort quorum under fault churn (default 1)")
		fanout    = flag.Int("aggregators", 0, "simulated edge-aggregator fan-out: uploads stream client→gateway→cloud as partial sums (0/1 = flat; bit-identical model either way)")
		buffered  = flag.Bool("buffered-agg", false, "use the legacy buffered aggregation (materializes every upload at once; baseline for -memstats)")
		rshards   = flag.Int("replica-shards", 0, "physical data shards for -partition replicate (default 64)")
		memstats  = flag.Bool("memstats", false, "print a parseable post-run memory line (heap after GC, OS footprint, hydrated-model high-water mark)")
		workers   = flag.Int("workers", 0, "parallel workers for client training and tensor kernels (0 = NumCPU, 1 = serial; results are identical for any value, so -resume checkpoints are worker-independent)")
		seed      = flag.Int64("seed", 1, "deterministic seed")
		quiet     = flag.Bool("quiet", false, "print only the final summary")
		csvPath   = flag.String("csv", "", "write the evaluation history to this CSV file")
		tracePath = flag.String("trace", "", "write JSONL telemetry records to this file")
		debugAddr = flag.String("debug-addr", "", "serve /metrics, /trace and /debug/pprof/ on this address")

		crashSpec    = flag.String("crash", "", "fault injection: permanent crashes as client@epoch[,client@epoch...]")
		outageSpec   = flag.String("outage", "", "fault injection: transient outages as client:from-to[,...] (epochs, to exclusive)")
		straggleSpec = flag.String("straggle", "", "fault injection: stragglers as clientxfactor[,...] e.g. 2x3.5")

		joinSpec     = flag.String("join", "", "churn: late arrivals as client@epoch[,...] — the client does not exist before that epoch and enters the candidate set from it")
		leaveSpec    = flag.String("leave", "", "churn: graceful departures as client@epoch[,...] — the in-flight training state migrates to a survivor instead of being lost")
		crashMidSpec = flag.String("crash-mid", "", "churn: mid-epoch crashes as client@epoch:batch[,...] — the interrupted TrainState is rescued and resumed bit-identically on another node")
		churnSpec    = flag.String("churn", "", "churn: seeded arrival process as first:count:from-to — count clients with ids first..first+count-1 join at plan-seeded epochs in [from,to)")

		ckptEvery  = flag.Int("checkpoint-every", 0, "save a resumable checkpoint every N evaluations (0 = off; with -jobs, every N fleet rounds)")
		ckptDir    = flag.String("checkpoint-dir", "checkpoints/sim", "directory for -checkpoint-every / -resume state")
		resume     = flag.Bool("resume", false, "resume from the checkpoint in -checkpoint-dir")
		allowDrift = flag.Bool("allow-membership-drift", false, "resume even when the checkpoint's membership manifest disagrees with the membership the flags describe (warns instead of refusing)")

		clusters       = flag.Int("clusters", 0, "clustered federation: group clients by label-distribution EMD into this many cluster models training concurrently (0 = single global model)")
		reclusterEvery = flag.Int("recluster-every", 0, "with -clusters: re-evaluate the client→cluster assignment every N fleet rounds, migrating drifted clients between cluster models (0 = initial grouping is final)")
		clusterRounds  = flag.Int("cluster-rounds", 20, "with -clusters: each cluster model's round budget")
		analytic       = flag.Bool("analytic", false, "one-shot analytic baseline: frozen seeded random-feature extractor + closed-form ridge head, solved in exactly ONE aggregation round")
		features       = flag.Int("features", 64, "with -analytic: random-feature width of the frozen extractor")
		ridge          = flag.Float64("ridge", 0, "with -analytic: ridge regularizer lambda (default 1e-3)")

		jobsSpec     = flag.String("jobs", "", "multi-tenant mode: run N jobs over one shared client fleet; spec is name=a,demand=4,rounds=10[,weight=,scheme=,dataset=,model=,migrator=,agg=,tau=,lr=,batch=,perclass=,noise=,seed=];name=b,... — unset per-job keys inherit the top-level flags")
		maxHydrated  = flag.Int("max-hydrated", 0, "with -jobs: admission budget on the summed demand of running jobs (0 = unlimited)")
		hungarianMax = flag.Int("hungarian-max", 0, "with -jobs: max active clients solved with the exact Hungarian allocator; larger rounds use the greedy fallback (default 256)")
		maxRounds    = flag.Int("max-rounds", 0, "with -jobs: hard bound on fleet rounds (0 = run until every job is done)")
	)
	flag.Parse()

	sk, err := parseScheme(*scheme)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var tel *telemetry.Telemetry
	if *tracePath != "" || *debugAddr != "" {
		tel = telemetry.New()
		if *tracePath != "" {
			f, err := os.Create(*tracePath)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer f.Close()
			tel.SetSink(f)
		}
		if *debugAddr != "" {
			go func() {
				if err := http.ListenAndServe(*debugAddr, telemetry.Handler(tel)); err != nil {
					fmt.Fprintln(os.Stderr, "debug server:", err)
				}
			}()
			fmt.Printf("debug surface on http://%s/ (metrics, trace, pprof)\n", *debugAddr)
		}
	}
	plan, err := buildFaultPlan(*seed, *crashSpec, *outageSpec, *straggleSpec,
		*joinSpec, *leaveSpec, *crashMidSpec, *churnSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	// The membership the flags describe: checked against the checkpoint's
	// manifest on -resume, saved alongside every checkpoint.
	mem := checkpoint.NewMembership(*clients, plan)
	o := fedmigr.Options{
		Scheme:          sk,
		Dataset:         fedmigr.Dataset(*dataset),
		Partition:       fedmigr.Partition(*partition),
		Model:           fedmigr.Model(*model),
		Migrator:        fedmigr.MigratorKind(*migrator),
		Clients:         *clients,
		LANs:            *lans,
		PerClass:        *perClass,
		Noise:           *noise,
		DominanceLevel:  *level,
		Epochs:          *epochs,
		AggEvery:        *agg,
		Tau:             *tau,
		LR:              *lr,
		BatchSize:       *batch,
		TargetAccuracy:  *target,
		BandwidthBudget: *bwBudget,
		TimeBudget:      *timeBdg,
		PrivacyEpsilon:  *epsilon,
		CohortSize:      *cohort,
		MinCohort:       *minCohort,
		Aggregators:     *fanout,
		BufferedAgg:     *buffered,
		ReplicaShards:   *rshards,
		Workers:         *workers,
		Seed:            *seed,
		Telemetry:       tel,
		Faults:          plan,
	}

	// One-shot analytic mode: no iterative phase at all — a single exact
	// aggregation round of per-client Gram/moment statistics.
	if *analytic {
		if err := runAnalytic(fedmigr.AnalyticOptions{
			Features: *features, Ridge: *ridge, Options: o,
		}, *quiet); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	// Clustered mode: -clusters switches fedmigr-sim from one global model
	// to k cluster models over one shared partition, grouped by EMD.
	if *clusters > 0 {
		if err := runClustered(fedmigr.ClusteredOptions{
			Clusters: *clusters, ReclusterEvery: *reclusterEvery,
			Rounds: *clusterRounds, MaxHydrated: *maxHydrated, Options: o,
		}, *maxRounds, *ckptEvery, *ckptDir, *resume, *quiet); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	// Multi-tenant mode: -jobs switches fedmigr-sim from one trainer to a
	// fleet of them sharing the client set; per-job keys in the spec
	// override the top-level flags captured in o.
	if *jobsSpec != "" {
		base := o
		base.Telemetry = nil // per-job trainers stay uninstrumented; the manager gets tel
		base.Faults = nil    // the fleet manager owns the fault plan
		jobs, err := parseJobs(*jobsSpec, base)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fo := fedmigr.FleetOptions{
			Clients: *clients, LANs: *lans,
			MaxHydrated: *maxHydrated, HungarianMax: *hungarianMax,
			Workers: *workers, Faults: plan, Telemetry: tel, Seed: *seed,
			Jobs: jobs,
		}
		if err := runFleet(fo, *maxRounds, *ckptEvery, *ckptDir, *resume, *quiet, mem, *allowDrift); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *tracePath != "" {
			fmt.Printf("telemetry trace written to %s\n", *tracePath)
		}
		return
	}

	// Resume: verify the checkpoint was saved under the membership the flags
	// describe (a drifted cohort would silently become a different
	// experiment), then read the prior history so the remaining epoch budget
	// is known before the simulation is assembled.
	var prior []core.RoundMetrics
	if *resume {
		warn, err := checkpoint.CheckMembership(*ckptDir, mem, *allowDrift)
		if err != nil {
			fmt.Fprintf(os.Stderr, "resume: %v\n", err)
			os.Exit(1)
		}
		if warn != "" {
			fmt.Fprintln(os.Stderr, "resume:", warn)
		}
		f, err := os.Open(*ckptDir + "/" + checkpoint.RunStateMetrics)
		if err != nil {
			fmt.Fprintf(os.Stderr, "resume: %v\n", err)
			os.Exit(1)
		}
		prior, err = checkpoint.ReadMetricsCSV(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "resume: %v\n", err)
			os.Exit(1)
		}
	}
	epochOff, roundOff := 0, 0
	if len(prior) > 0 {
		last := prior[len(prior)-1]
		epochOff, roundOff = last.Epoch, last.Round
		if epochOff >= o.Epochs {
			fmt.Printf("checkpoint already covers %d epochs (asked for %d); nothing to do\n", epochOff, o.Epochs)
			return
		}
		o.Epochs -= epochOff
		// Keep the cohort sampling stream aligned with the original run:
		// round r after the resume draws the same cohort the uninterrupted
		// run would have drawn at round roundOff+r.
		o.RoundOffset = roundOff
		fmt.Printf("resuming from %s at epoch %d (%d epochs remain)\n", *ckptDir, epochOff, o.Epochs)
	}
	sim, err := fedmigr.New(o)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *resume {
		if err := checkpoint.LoadModel(*ckptDir+"/"+checkpoint.RunStateModel, sim.Trainer.GlobalModel()); err != nil {
			fmt.Fprintf(os.Stderr, "resume: %v\n", err)
			os.Exit(1)
		}
	}
	if *ckptEvery > 0 {
		var recorded []core.RoundMetrics
		sim.Trainer.SetRoundHook(func(rm core.RoundMetrics, g *nn.Sequential) {
			rm.Epoch += epochOff
			rm.Round += roundOff
			recorded = append(recorded, rm)
			if len(recorded)%*ckptEvery != 0 {
				return
			}
			if err := checkpoint.SaveRunState(*ckptDir, g, append(append([]core.RoundMetrics{}, prior...), recorded...)); err != nil {
				fmt.Fprintf(os.Stderr, "checkpoint: %v\n", err)
			} else if err := checkpoint.SaveMembership(*ckptDir, mem); err != nil {
				fmt.Fprintf(os.Stderr, "checkpoint: %v\n", err)
			}
		})
	}
	res := sim.Run()
	combined := append([]core.RoundMetrics{}, prior...)
	for _, m := range res.History {
		m.Epoch += epochOff
		m.Round += roundOff
		combined = append(combined, m)
	}
	if *ckptEvery > 0 {
		if err := checkpoint.SaveRunState(*ckptDir, sim.Trainer.GlobalModel(), combined); err != nil {
			fmt.Fprintf(os.Stderr, "checkpoint: %v\n", err)
		} else if err := checkpoint.SaveMembership(*ckptDir, mem); err != nil {
			fmt.Fprintf(os.Stderr, "checkpoint: %v\n", err)
		} else {
			fmt.Printf("checkpoint saved to %s\n", *ckptDir)
		}
	}
	if !*quiet {
		fmt.Printf("%-7s %-7s %-9s %-9s %-11s %-11s\n", "epoch", "round", "loss", "acc", "traffic", "wall")
		for _, m := range combined {
			fmt.Printf("%-7d %-7d %-9.4f %-9.4f %-11s %-11s\n",
				m.Epoch, m.Round, m.TrainLoss, m.TestAcc,
				fmt.Sprintf("%.2fMB", float64(m.Snapshot.TotalBytes)/1e6),
				fmt.Sprintf("%.1fs", m.Snapshot.WallSeconds))
		}
	}
	fmt.Printf("\nscheme=%v epochs=%d final_acc=%.4f best_acc=%.4f final_loss=%.4f\n",
		sk, res.Epochs, res.FinalAcc, res.BestAcc(), res.FinalLoss)
	fmt.Printf("traffic: total=%.2fMB c2s=%.2fMB global=%.2fMB local=%.2fMB\n",
		float64(res.Snapshot.TotalBytes)/1e6, float64(res.Snapshot.C2SBytes)/1e6,
		float64(res.Snapshot.GlobalBytes)/1e6, float64(res.Snapshot.LocalBytes)/1e6)
	fmt.Printf("time: wall=%.1fs device-compute=%.1fs transfers=%d\n",
		res.Snapshot.WallSeconds, res.Snapshot.ComputeSecs, res.Snapshot.NumTransfers)
	if plan.Joins() > 0 || len(plan.LeaveSchedule()) > 0 || sim.Trainer.StateMigrations() > 0 {
		fmt.Printf("churn: joins=%d leaves=%d state_migrations=%d\n",
			plan.Joins(), len(plan.LeaveSchedule()), sim.Trainer.StateMigrations())
	}
	if res.ReachedTarget {
		fmt.Println("target accuracy reached")
	}
	if res.BudgetExhausted {
		fmt.Println("stopped on budget exhaustion")
	}
	if *csvPath != "" {
		if err := checkpoint.SaveMetricsCSV(*csvPath, combined); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("metrics written to %s\n", *csvPath)
	}
	if *tracePath != "" {
		fmt.Printf("telemetry trace written to %s\n", *tracePath)
	}
	if *memstats {
		// One line, machine-parseable: scripts/bench.sh and check.sh grep
		// this to assert the streaming path's memory stays flat in K.
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		fmt.Printf("memstats: heap_alloc_mb=%.1f sys_mb=%.1f max_hydrated=%d\n",
			float64(ms.HeapAlloc)/1e6, float64(ms.Sys)/1e6, sim.Trainer.MaxHydrated())
	}
}

// buildFaultPlan assembles a faults.Plan from the -crash / -outage /
// -straggle fault grammars plus the -join / -leave / -crash-mid / -churn
// membership grammars; all empty returns a nil plan (faults off).
func buildFaultPlan(seed int64, crash, outage, straggle, join, leave, crashMid, churn string) (*faults.Plan, error) {
	if crash == "" && outage == "" && straggle == "" &&
		join == "" && leave == "" && crashMid == "" && churn == "" {
		return nil, nil
	}
	p := faults.NewPlan(seed)
	for _, spec := range splitSpecs(crash) {
		c, e, err := parsePair(spec, "@")
		if err != nil {
			return nil, fmt.Errorf("-crash %q: want client@epoch: %v", spec, err)
		}
		p.CrashAt(c, e)
	}
	for _, spec := range splitSpecs(outage) {
		i := strings.IndexByte(spec, ':')
		if i < 0 {
			return nil, fmt.Errorf("-outage %q: want client:from-to", spec)
		}
		c, err := strconv.Atoi(spec[:i])
		if err != nil {
			return nil, fmt.Errorf("-outage %q: bad client: %v", spec, err)
		}
		from, to, err := parsePair(spec[i+1:], "-")
		if err != nil {
			return nil, fmt.Errorf("-outage %q: want client:from-to: %v", spec, err)
		}
		p.Outage(c, from, to)
	}
	for _, spec := range splitSpecs(straggle) {
		i := strings.IndexByte(spec, 'x')
		if i < 0 {
			return nil, fmt.Errorf("-straggle %q: want clientxfactor (e.g. 2x3.5)", spec)
		}
		c, err := strconv.Atoi(spec[:i])
		if err != nil {
			return nil, fmt.Errorf("-straggle %q: bad client: %v", spec, err)
		}
		f, err := strconv.ParseFloat(spec[i+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("-straggle %q: bad factor: %v", spec, err)
		}
		p.Straggler(c, f)
	}
	for _, spec := range splitSpecs(join) {
		c, e, err := parsePair(spec, "@")
		if err != nil {
			return nil, fmt.Errorf("-join %q: want client@epoch: %v", spec, err)
		}
		p.JoinAt(c, e)
	}
	for _, spec := range splitSpecs(leave) {
		c, e, err := parsePair(spec, "@")
		if err != nil {
			return nil, fmt.Errorf("-leave %q: want client@epoch: %v", spec, err)
		}
		p.LeaveAt(c, e)
	}
	for _, spec := range splitSpecs(crashMid) {
		i := strings.IndexByte(spec, '@')
		if i < 0 {
			return nil, fmt.Errorf("-crash-mid %q: want client@epoch:batch", spec)
		}
		c, err := strconv.Atoi(spec[:i])
		if err != nil {
			return nil, fmt.Errorf("-crash-mid %q: bad client: %v", spec, err)
		}
		e, b, err := parsePair(spec[i+1:], ":")
		if err != nil {
			return nil, fmt.Errorf("-crash-mid %q: want client@epoch:batch: %v", spec, err)
		}
		p.CrashMidEpoch(c, e, b)
	}
	if churn != "" {
		parts := strings.SplitN(churn, ":", 3)
		if len(parts) != 3 {
			return nil, fmt.Errorf("-churn %q: want first:count:from-to", churn)
		}
		first, err := strconv.Atoi(parts[0])
		if err != nil {
			return nil, fmt.Errorf("-churn %q: bad first client: %v", churn, err)
		}
		count, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, fmt.Errorf("-churn %q: bad count: %v", churn, err)
		}
		from, to, err := parsePair(parts[2], "-")
		if err != nil {
			return nil, fmt.Errorf("-churn %q: want first:count:from-to: %v", churn, err)
		}
		p.Arrivals(first, count, from, to)
	}
	return p, nil
}

func splitSpecs(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func parsePair(s, sep string) (int, int, error) {
	i := strings.Index(s, sep)
	if i < 0 {
		return 0, 0, fmt.Errorf("missing %q", sep)
	}
	a, err := strconv.Atoi(s[:i])
	if err != nil {
		return 0, 0, err
	}
	b, err := strconv.Atoi(s[i+len(sep):])
	if err != nil {
		return 0, 0, err
	}
	return a, b, nil
}

func parseScheme(s string) (fedmigr.Scheme, error) {
	switch strings.ToLower(s) {
	case "fedavg":
		return fedmigr.SchemeFedAvg, nil
	case "fedprox":
		return fedmigr.SchemeFedProx, nil
	case "fedswap":
		return fedmigr.SchemeFedSwap, nil
	case "randmigr":
		return fedmigr.SchemeRandMigr, nil
	case "fedmigr":
		return fedmigr.SchemeFedMigr, nil
	default:
		return 0, fmt.Errorf("unknown scheme %q (want fedavg|fedprox|fedswap|randmigr|fedmigr)", s)
	}
}
