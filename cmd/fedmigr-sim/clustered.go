package main

import (
	"fmt"
	"os"

	fedmigr "fedmigr"
)

// runClustered drives the clustered-federation mode of fedmigr-sim
// (-clusters k): one shared non-IID partition grouped by label-distribution
// EMD into k cluster models training concurrently as fleet jobs, with
// optional periodic re-evaluation (-recluster-every) migrating drifted
// clients between cluster models. With -target set, the run stops at the
// first round whose routed accuracy reaches it and reports the round count
// — the number scripts/bench.sh sweeps. The trailing summary lines are
// machine-parseable (key=value).
func runClustered(o fedmigr.ClusteredOptions, maxRounds, ckptEvery int, ckptDir string, resume, quiet bool) error {
	c, err := fedmigr.NewClustered(o)
	if err != nil {
		return err
	}
	defer c.Close()
	if resume {
		if err := c.RestoreState(ckptDir); err != nil {
			return fmt.Errorf("resume: %w", err)
		}
		fmt.Printf("resuming clustered run from %s at round %d\n", ckptDir, c.Fleet.Round())
	}

	target := o.TargetAccuracy
	rounds, roundsToTarget := 0, -1
	overall := 0.0
	for !c.Fleet.Idle() {
		if maxRounds > 0 && rounds >= maxRounds {
			break
		}
		c.RunRound()
		rounds++
		if ckptEvery > 0 && rounds%ckptEvery == 0 {
			if err := c.SaveState(ckptDir); err != nil {
				fmt.Fprintf(os.Stderr, "checkpoint: %v\n", err)
			}
		}
		if target > 0 {
			overall, _ = c.Evaluate()
			if overall >= target {
				roundsToTarget = c.Fleet.Round()
				break
			}
		}
	}
	if ckptEvery > 0 {
		if err := c.SaveState(ckptDir); err != nil {
			fmt.Fprintf(os.Stderr, "checkpoint: %v\n", err)
		} else {
			fmt.Printf("clustered checkpoint saved to %s\n", ckptDir)
		}
	}

	overall, perCluster := c.Evaluate()
	var totalBytes int64
	for _, j := range c.Fleet.Jobs() {
		if n := len(j.History); n > 0 {
			totalBytes += j.History[n-1].Snapshot.TotalBytes
		}
	}
	totalBytes += c.Manager.HandoffBytes()

	if !quiet {
		for k, name := range clusterNames(c) {
			j := c.Fleet.Job(name)
			fmt.Printf("\n%s (%s, %d members):\n", name, j.State, len(c.Manager.Members(k)))
			fmt.Printf("%-7s %-9s %-9s\n", "round", "loss", "acc")
			for i, m := range j.History {
				fmt.Printf("%-7d %-9.4f %-9.4f\n", i+1, m.TrainLoss, m.TestAcc)
			}
		}
		fmt.Println()
	}
	for k, name := range clusterNames(c) {
		fmt.Printf("cluster=%d job=%s members=%d medoid=%d acc=%.4f\n",
			k, name, len(c.Manager.Members(k)), c.Manager.Medoids()[k], perCluster[k])
	}
	fmt.Printf("clustered: clusters=%d rounds=%d rounds_to_target=%d moves=%d handoff_bytes=%d routed_acc=%.4f total_bytes=%d\n",
		c.Manager.K(), c.Fleet.Round(), roundsToTarget, c.Manager.Moves(),
		c.Manager.HandoffBytes(), overall, totalBytes)
	return nil
}

// clusterNames recovers the cluster-ordered job names ("cluster-0" …).
func clusterNames(c *fedmigr.Clustered) []string {
	names := make([]string, c.Manager.K())
	for k := range names {
		names[k] = fmt.Sprintf("cluster-%d", k)
	}
	return names
}

// runAnalytic drives the one-shot analytic baseline (-analytic): a frozen
// seeded random-feature extractor plus a closed-form ridge head solved in
// exactly one aggregation round. The summary line is machine-parseable;
// scripts/bench.sh divides an iterative scheme's traffic by upload_bytes
// to get the one-shot communication saving.
func runAnalytic(o fedmigr.AnalyticOptions, quiet bool) error {
	s, err := fedmigr.NewAnalytic(o)
	if err != nil {
		return err
	}
	defer s.Close()
	res := s.Run()
	if !quiet {
		fmt.Printf("%-7s %-9s %-9s\n", "round", "loss", "acc")
		for i, m := range res.History {
			fmt.Printf("%-7d %-9.4f %-9.4f\n", i+1, m.TrainLoss, m.TestAcc)
		}
		fmt.Println()
	}
	fmt.Printf("analytic: features=%d rounds=%d acc=%.4f loss=%.4f upload_bytes=%d wall=%.2fs\n",
		s.Options.Features, res.Rounds, res.FinalAcc, res.FinalLoss,
		s.Trainer.UploadBytes(), res.Snapshot.WallSeconds)
	return nil
}
