package main

import (
	"fmt"
	"os"
	"strconv"
	"strings"

	fedmigr "fedmigr"
	"fedmigr/internal/checkpoint"
	"fedmigr/internal/fleet"
)

// parseJobs parses the -jobs spec: jobs separated by ';', fields by ',',
// each field key=value. Required keys: name, demand, rounds. Optional
// per-job keys override the corresponding top-level flags: weight, scheme,
// dataset, partition, model, migrator, agg, tau, lr, batch, perclass,
// noise, seed.
//
//	-jobs "name=a,model=mlp,demand=4,rounds=10;name=b,model=c10cnn,demand=6,rounds=5,weight=0.5"
func parseJobs(spec string, base fedmigr.Options) ([]fedmigr.JobSpec, error) {
	var jobs []fedmigr.JobSpec
	for _, js := range strings.Split(spec, ";") {
		js = strings.TrimSpace(js)
		if js == "" {
			continue
		}
		j := fedmigr.JobSpec{Options: base}
		j.Options.Seed = 0 // derive a per-job seed unless the spec names one
		for _, field := range strings.Split(js, ",") {
			field = strings.TrimSpace(field)
			if field == "" {
				continue
			}
			eq := strings.IndexByte(field, '=')
			if eq < 0 {
				return nil, fmt.Errorf("-jobs field %q: want key=value", field)
			}
			key, val := field[:eq], field[eq+1:]
			var err error
			switch key {
			case "name":
				j.Name = val
			case "demand":
				j.Demand, err = strconv.Atoi(val)
			case "rounds":
				j.Rounds, err = strconv.Atoi(val)
			case "weight":
				j.Weight, err = strconv.ParseFloat(val, 64)
			case "scheme":
				j.Options.Scheme, err = parseScheme(val)
			case "dataset":
				j.Options.Dataset = fedmigr.Dataset(val)
			case "partition":
				j.Options.Partition = fedmigr.Partition(val)
			case "model":
				j.Options.Model = fedmigr.Model(val)
			case "migrator":
				j.Options.Migrator = fedmigr.MigratorKind(val)
			case "agg":
				j.Options.AggEvery, err = strconv.Atoi(val)
			case "tau":
				j.Options.Tau, err = strconv.Atoi(val)
			case "lr":
				j.Options.LR, err = strconv.ParseFloat(val, 64)
			case "batch":
				j.Options.BatchSize, err = strconv.Atoi(val)
			case "perclass":
				j.Options.PerClass, err = strconv.Atoi(val)
			case "noise":
				j.Options.Noise, err = strconv.ParseFloat(val, 64)
			case "seed":
				j.Options.Seed, err = strconv.ParseInt(val, 10, 64)
			default:
				return nil, fmt.Errorf("-jobs: unknown key %q in %q", key, js)
			}
			if err != nil {
				return nil, fmt.Errorf("-jobs field %q: %v", field, err)
			}
		}
		if j.Name == "" {
			return nil, fmt.Errorf("-jobs entry %q: missing name=", js)
		}
		jobs = append(jobs, j)
	}
	if len(jobs) == 0 {
		return nil, fmt.Errorf("-jobs: no jobs in spec %q", spec)
	}
	return jobs, nil
}

// runFleet drives the multi-job path of fedmigr-sim: assemble the fleet,
// optionally resume from a version-2 checkpoint (refusing membership
// drift unless overridden), run rounds (checkpointing every ckptEvery
// fleet rounds), and print per-job trajectories.
func runFleet(o fedmigr.FleetOptions, maxRounds, ckptEvery int, ckptDir string, resume, quiet bool, mem checkpoint.Membership, allowDrift bool) error {
	f, err := fedmigr.NewFleet(o)
	if err != nil {
		return err
	}
	defer f.Close()
	for _, j := range f.Manager.Jobs() {
		if j.State == fleet.Rejected {
			fmt.Printf("job %s REJECTED: demand %d exceeds hydrated-replica budget %d\n",
				j.Cfg.Name, j.Cfg.Demand, o.MaxHydrated)
		}
	}
	if resume {
		warn, err := checkpoint.CheckMembership(ckptDir, mem, allowDrift)
		if err != nil {
			return fmt.Errorf("resume: %w", err)
		}
		if warn != "" {
			fmt.Fprintln(os.Stderr, "resume:", warn)
		}
		if err := f.RestoreState(ckptDir); err != nil {
			return fmt.Errorf("resume: %w", err)
		}
		fmt.Printf("resuming fleet from %s at round %d\n", ckptDir, f.Manager.Round())
	}

	rounds := 0
	for !f.Manager.Idle() {
		if maxRounds > 0 && rounds >= maxRounds {
			break
		}
		f.Manager.RunRound()
		rounds++
		if ckptEvery > 0 && rounds%ckptEvery == 0 {
			if err := f.SaveState(ckptDir); err != nil {
				fmt.Printf("checkpoint: %v\n", err)
			}
		}
	}
	if ckptEvery > 0 {
		if err := f.SaveState(ckptDir); err != nil {
			fmt.Printf("checkpoint: %v\n", err)
		} else if err := checkpoint.SaveMembership(ckptDir, mem); err != nil {
			fmt.Printf("checkpoint: %v\n", err)
		} else {
			fmt.Printf("fleet checkpoint saved to %s\n", ckptDir)
		}
	}

	if !quiet {
		for _, j := range f.Manager.Jobs() {
			if j.State == fleet.Rejected {
				continue
			}
			fmt.Printf("\njob %s (%s):\n", j.Cfg.Name, j.State)
			fmt.Printf("%-7s %-9s %-9s\n", "round", "loss", "acc")
			for i, m := range j.History {
				fmt.Printf("%-7d %-9.4f %-9.4f\n", i+1, m.TrainLoss, m.TestAcc)
			}
		}
	}
	fmt.Printf("\nfleet: %d rounds, %d jobs\n", f.Manager.Round(), len(f.Manager.Jobs()))
	for _, j := range f.Manager.Jobs() {
		final := 0.0
		if n := len(j.History); n > 0 {
			final = j.History[n-1].TestAcc
		}
		fmt.Printf("job=%s state=%s rounds=%d/%d demand=%d final_acc=%.4f\n",
			j.Cfg.Name, j.State, j.RoundsDone, j.Cfg.Rounds, j.Cfg.Demand, final)
	}
	return nil
}
