// Package fedmigr is the public API of this reproduction of "Enhancing
// Federated Learning with Intelligent Model Migration in Heterogeneous
// Edge Computing" (Liu et al., ICDE 2022).
//
// It assembles the internal substrates — tensor/NN stack, synthetic
// datasets with the paper's non-IID partitioners, an edge-network cost
// simulator, the five FL schemes (FedAvg, FedProx, FedSwap, RandMigr,
// FedMigr), and the DDPG-based migration policy (EMPG) — behind a single
// Options struct:
//
//	res, err := fedmigr.Run(fedmigr.Options{
//	    Scheme:    fedmigr.SchemeFedMigr,
//	    Dataset:   fedmigr.DatasetC10,
//	    Partition: fedmigr.PartitionShards,
//	    Clients:   10, LANs: 3, Epochs: 100, AggEvery: 10,
//	})
//
// See DESIGN.md for the architecture and EXPERIMENTS.md for the
// paper-versus-measured record of every table and figure.
package fedmigr

import (
	"fmt"
	"math"

	"fedmigr/internal/core"
	"fedmigr/internal/data"
	"fedmigr/internal/drl"
	"fedmigr/internal/edgenet"
	"fedmigr/internal/faults"
	"fedmigr/internal/nn"
	"fedmigr/internal/privacy"
	"fedmigr/internal/telemetry"
	"fedmigr/internal/tensor"
)

// Scheme selects the federated-training algorithm.
type Scheme = core.SchemeKind

// The five schemes of the paper's evaluation.
const (
	SchemeFedAvg   = core.FedAvg
	SchemeFedProx  = core.FedProx
	SchemeFedSwap  = core.FedSwap
	SchemeRandMigr = core.RandMigr
	SchemeFedMigr  = core.FedMigr
)

// Dataset names a synthetic benchmark workload (DESIGN.md §2 substitutes
// Gaussian-cluster synthetic data for CIFAR-10/100 and ImageNet-100).
type Dataset string

// Built-in datasets.
const (
	DatasetC10     Dataset = "c10"     // 10 classes — CIFAR-10 stand-in
	DatasetC100    Dataset = "c100"    // 100 classes — CIFAR-100 stand-in
	DatasetINet100 Dataset = "inet100" // 100 classes, larger images — ImageNet-100 stand-in
)

// Partition names a client data-partition strategy.
type Partition string

// Built-in partitions (Sec. IV-C/IV-D of the paper).
const (
	PartitionIID       Partition = "iid"
	PartitionShards    Partition = "shards"    // label shards: 1 or more classes per client
	PartitionDominance Partition = "dominance" // test-bed p%-dominance non-IID levels
	PartitionLAN       Partition = "lan"       // LAN-correlated labels (Fig. 3 scenario)
	PartitionDirichlet Partition = "dirichlet" // Dirichlet(α) label proportions (extension)
	// PartitionReplicate deals clients shared references into a small pool
	// of physical shards (ReplicaShards), so dataset memory is independent
	// of Clients — the partition for 100k-client cohort simulations.
	PartitionReplicate Partition = "replicate"
)

// Model names a zoo architecture.
type Model string

// Built-in models (reduced-width counterparts of the paper's models).
const (
	ModelC10CNN   Model = "c10cnn"
	ModelC100CNN  Model = "c100cnn"
	ModelResLite  Model = "reslite"
	ModelAlexLite Model = "alexlite" // AlexNet stand-in (Fig. 3's model)
	ModelMLP      Model = "mlp"
)

// MigratorKind selects the migration policy driving FedMigr (and the fixed
// strategies of Fig. 3).
type MigratorKind string

// Built-in migration policies.
const (
	MigratorDRL       MigratorKind = "drl"     // the paper's EMPG agent
	MigratorRandom    MigratorKind = "random"  // RandMigr's policy
	MigratorGreedyEMD MigratorKind = "greedy"  // deterministic EMD-greedy oracle
	MigratorOptimal   MigratorKind = "optimal" // exact per-event Hungarian assignment
	MigratorCrossLAN  MigratorKind = "cross"   // Fig. 3: migrate across LANs
	MigratorWithinLAN MigratorKind = "within"  // Fig. 3: migrate within LANs
	MigratorStay      MigratorKind = "stay"    // never migrate
)

// Options configures a simulation. Zero values take sensible defaults;
// Clients, at minimum, should usually be set.
type Options struct {
	Scheme    Scheme
	Dataset   Dataset
	Partition Partition
	Model     Model
	Migrator  MigratorKind

	// Clients is K (default 10); LANs groups them (default 3, the paper's
	// C10 simulation layout).
	Clients int
	LANs    int
	// PerClass scales the synthetic dataset (training samples per class,
	// default 20).
	PerClass int
	// Noise is the within-class standard deviation of the synthetic data
	// (default 0.6; larger is harder).
	Noise float64
	// ShardsPerClient applies to PartitionShards (default 1 for ≤10
	// classes, 5 otherwise, matching the paper).
	ShardsPerClient int
	// DominanceLevel p applies to PartitionDominance (default 0.6).
	DominanceLevel float64
	// DirichletAlpha applies to PartitionDirichlet (default 0.5).
	DirichletAlpha float64
	// ReplicaShards applies to PartitionReplicate: the number of distinct
	// physical data shards shared across all clients (default 64, clamped
	// to Clients).
	ReplicaShards int

	// CohortSize, when > 0, samples that many clients per aggregation round
	// (seeded, deterministic) and keeps only the cohort's models hydrated —
	// peak memory O(CohortSize), independent of Clients. 0 trains everyone
	// every round.
	CohortSize int
	// MinCohort is the cohort quorum under fault churn (default 1).
	MinCohort int
	// Aggregators simulates a LAN edge-aggregator tier with this fan-out:
	// uploads stream client → gateway → cloud as partial sums. Purely a
	// traffic/time accounting change — the global model is bit-identical.
	Aggregators int
	// BufferedAgg restores the legacy buffered aggregation path (all
	// uploads materialized at once) — the baseline the streaming
	// accumulator is parity-tested and benchmarked against.
	BufferedAgg bool
	// RoundOffset aligns the cohort sampling stream after a checkpoint
	// resume: set it to the number of aggregation rounds already consumed.
	RoundOffset int

	// Epochs, AggEvery, Tau, BatchSize, LR, Momentum, ProxMu mirror
	// core.Config.
	Epochs    int
	AggEvery  int
	Tau       int
	BatchSize int
	LR        float64
	Momentum  float64
	ProxMu    float64
	EvalEvery int

	// TargetAccuracy / budgets implement the paper's stopping protocols.
	TargetAccuracy  float64
	ComputeBudget   float64
	BandwidthBudget int64
	TimeBudget      float64

	// PrivacyEpsilon enables (ε, δ)-LDP when finite and positive
	// (Sec. III-E2); PrivacyDelta defaults to 1e-5, PrivacyClip to 10.
	PrivacyEpsilon float64
	PrivacyDelta   float64
	PrivacyClip    float64

	// Cost overrides the network cost model (default
	// edgenet.DefaultCostModel with deterministic jitter).
	Cost *edgenet.CostModel
	// DRL overrides the EMPG configuration for MigratorDRL.
	DRL *drl.MigratorConfig

	// Telemetry, when non-nil, instruments the run: per-round train loss
	// and accuracy gauges, migration/aggregation spans and events, traffic
	// counters mirrored from the edge accountant, and DRL agent internals.
	// See README.md "Observability".
	Telemetry *telemetry.Telemetry

	// Faults, when non-nil, is a deterministic fault schedule replayed
	// during the run: scheduled crashes, transient outages, and straggler
	// slow-downs. See internal/faults and DESIGN.md "Fault tolerance".
	Faults *faults.Plan

	// Workers is the parallel worker count for client training and tensor
	// kernels (0 = runtime.NumCPU(), 1 = serial). Any value produces
	// bit-identical results; see DESIGN.md §5.
	Workers int

	// ShuffleBatches randomizes each model's per-epoch batch order with a
	// worker-count-independent stream (default false: in-order batches).
	ShuffleBatches bool

	Seed int64
}

func (o Options) withDefaults() Options {
	if o.Dataset == "" {
		o.Dataset = DatasetC10
	}
	if o.Partition == "" {
		o.Partition = PartitionShards
	}
	if o.Model == "" {
		o.Model = ModelC10CNN
	}
	if o.Migrator == "" {
		if o.Scheme == SchemeRandMigr {
			o.Migrator = MigratorRandom
		} else {
			o.Migrator = MigratorDRL
		}
	}
	if o.Clients <= 0 {
		o.Clients = 10
	}
	if o.LANs <= 0 {
		o.LANs = 3
	}
	if o.PerClass <= 0 {
		o.PerClass = 20
	}
	if o.DominanceLevel == 0 {
		o.DominanceLevel = 0.6
	}
	if o.DirichletAlpha == 0 {
		o.DirichletAlpha = 0.5
	}
	if o.Epochs <= 0 {
		o.Epochs = 50
	}
	if o.ReplicaShards <= 0 {
		o.ReplicaShards = 64
	}
	if o.AggEvery <= 0 {
		if o.Scheme == SchemeFedAvg || o.Scheme == SchemeFedProx {
			o.AggEvery = 1
		} else {
			o.AggEvery = 10
		}
	}
	if o.LR == 0 {
		o.LR = 0.05
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 32
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Result re-exports the run summary.
type Result = core.Result

// Simulation is an assembled experiment ready to Run, with access to its
// components for instrumentation.
type Simulation struct {
	Trainer  *core.Trainer
	Migrator core.Migrator
	Test     *data.Dataset
	Clients  []*core.Client
	Topology *edgenet.Topology
	Cost     *edgenet.CostModel
	Options  Options
}

// Run executes the simulation.
func (s *Simulation) Run() *Result { return s.Trainer.Run() }

// New assembles a Simulation from options without running it.
func New(o Options) (*Simulation, error) {
	o = o.withDefaults()

	train, test, spec, err := buildDataset(o)
	if err != nil {
		return nil, err
	}
	parts, topo, err := partition(o, train)
	if err != nil {
		return nil, err
	}
	clients := make([]*core.Client, o.Clients)
	for i := range clients {
		clients[i] = &core.Client{ID: i, Data: parts[i]}
	}
	factory, err := buildFactory(o, spec)
	if err != nil {
		return nil, err
	}
	cost := o.Cost
	if cost == nil {
		cost = edgenet.DefaultCostModel()
		cost.Jitter = 0.1
		cost.Seed(o.Seed + 7)
	}
	mig, err := buildMigrator(o, topo)
	if err != nil {
		return nil, err
	}
	mech, err := buildPrivacy(o)
	if err != nil {
		return nil, err
	}
	tr, err := core.NewTrainer(coreConfig(o, mech), clients, topo, cost, test, factory, mig)
	if err != nil {
		return nil, err
	}
	tr.SetTelemetry(o.Telemetry)
	if dm, ok := mig.(*drl.Migrator); ok {
		dm.SetTelemetry(o.Telemetry)
	}
	return &Simulation{
		Trainer: tr, Migrator: mig, Test: test, Clients: clients,
		Topology: topo, Cost: cost, Options: o,
	}, nil
}

// Run assembles and executes a simulation in one call.
func Run(o Options) (*Result, error) {
	s, err := New(o)
	if err != nil {
		return nil, err
	}
	return s.Run(), nil
}

// NewWithMigrator assembles a Simulation that uses the caller's migration
// policy instead of the one named in o.Migrator — the deployment path for
// a pre-trained DRL agent or any custom core.Migrator.
func NewWithMigrator(o Options, m core.Migrator) (*Simulation, error) {
	o = o.withDefaults()
	if o.Scheme != SchemeRandMigr && o.Scheme != SchemeFedMigr {
		return nil, fmt.Errorf("fedmigr: scheme %v does not use a migrator", o.Scheme)
	}
	sim, err := New(o)
	if err != nil {
		return nil, err
	}
	sim.Migrator = m
	mech, err := buildPrivacy(o)
	if err != nil {
		return nil, err
	}
	tr, err := core.NewTrainer(coreConfig(o, mech), sim.Clients, sim.Topology, sim.Cost, sim.Test, factoryOf(sim), m)
	if err != nil {
		return nil, err
	}
	tr.SetTelemetry(o.Telemetry)
	if dm, ok := m.(*drl.Migrator); ok {
		dm.SetTelemetry(o.Telemetry)
	}
	sim.Trainer = tr
	return sim, nil
}

// coreConfig maps Options onto the trainer configuration (shared by New
// and NewWithMigrator so the two assembly paths cannot drift).
func coreConfig(o Options, mech *privacy.Mechanism) core.Config {
	return core.Config{
		Scheme:          o.Scheme,
		Tau:             o.Tau,
		AggEvery:        o.AggEvery,
		BatchSize:       o.BatchSize,
		LR:              o.LR,
		Momentum:        o.Momentum,
		ProxMu:          o.ProxMu,
		MaxEpochs:       o.Epochs,
		EvalEvery:       o.EvalEvery,
		TargetAccuracy:  o.TargetAccuracy,
		ComputeBudget:   o.ComputeBudget,
		BandwidthBudget: o.BandwidthBudget,
		TimeBudget:      o.TimeBudget,
		Privacy:         mech,
		Faults:          o.Faults,
		Workers:         o.Workers,
		ShuffleBatches:  o.ShuffleBatches,
		CohortSize:      o.CohortSize,
		MinCohort:       o.MinCohort,
		Aggregators:     o.Aggregators,
		BufferedAgg:     o.BufferedAgg,
		RoundOffset:     o.RoundOffset,
		Seed:            o.Seed,
	}
}

func buildDataset(o Options) (train, test *data.Dataset, spec nn.ModelSpec, err error) {
	switch o.Dataset {
	case DatasetC10:
		train, test = data.Synthetic(data.SyntheticConfig{
			Classes: 10, Channels: 3, Height: 8, Width: 8,
			PerClass: o.PerClass, TestPer: o.PerClass, Noise: o.Noise, Seed: o.Seed,
		})
	case DatasetC100:
		train, test = data.Synthetic(data.SyntheticConfig{
			Classes: 100, Channels: 3, Height: 8, Width: 8,
			PerClass: o.PerClass, TestPer: o.PerClass, Noise: o.Noise, Seed: o.Seed,
		})
	case DatasetINet100:
		train, test = data.Synthetic(data.SyntheticConfig{
			Classes: 100, Channels: 3, Height: 10, Width: 10,
			PerClass: o.PerClass, TestPer: o.PerClass, Noise: o.Noise, Seed: o.Seed,
		})
	default:
		return nil, nil, spec, fmt.Errorf("fedmigr: unknown dataset %q", o.Dataset)
	}
	c, h, w := train.Spec()
	spec = nn.ModelSpec{Channels: c, Height: h, Width: w, Classes: train.Classes}
	return train, test, spec, nil
}

func partition(o Options, train *data.Dataset) ([]*data.Dataset, *edgenet.Topology, error) {
	g := tensor.NewRNG(o.Seed + 3)
	var topo *edgenet.Topology
	if o.Clients == 10 && o.LANs == 3 {
		// The paper's C10 simulation layout: LANs of 4/3/3 clients.
		topo = edgenet.GroupedTopology([][]int{{0, 1, 2, 3}, {4, 5, 6}, {7, 8, 9}})
	} else {
		topo = edgenet.EvenTopology(o.Clients, o.LANs)
	}
	switch o.Partition {
	case PartitionIID:
		return data.PartitionIID(train, o.Clients, g), topo, nil
	case PartitionShards:
		sp := o.ShardsPerClient
		if sp <= 0 {
			if train.Classes > 10 {
				sp = 5
			} else {
				sp = 1
			}
		}
		return data.PartitionShards(train, o.Clients, sp, g), topo, nil
	case PartitionDominance:
		return data.PartitionDominance(train, o.Clients, o.DominanceLevel, g), topo, nil
	case PartitionLAN:
		return data.PartitionLANCorrelated(train, topo.LANOf, g), topo, nil
	case PartitionDirichlet:
		return data.PartitionDirichlet(train, o.Clients, o.DirichletAlpha, g), topo, nil
	case PartitionReplicate:
		return data.PartitionReplicated(train, o.Clients, o.ReplicaShards, g), topo, nil
	default:
		return nil, nil, fmt.Errorf("fedmigr: unknown partition %q", o.Partition)
	}
}

func buildFactory(o Options, spec nn.ModelSpec) (core.ModelFactory, error) {
	seed := o.Seed + 11
	switch o.Model {
	case ModelC10CNN:
		return func() *nn.Sequential { return nn.NewC10CNN(tensor.NewRNG(seed), spec) }, nil
	case ModelC100CNN:
		return func() *nn.Sequential { return nn.NewC100CNN(tensor.NewRNG(seed), spec) }, nil
	case ModelResLite:
		return func() *nn.Sequential { return nn.NewResLite(tensor.NewRNG(seed), spec, 1) }, nil
	case ModelAlexLite:
		return func() *nn.Sequential { return nn.NewAlexLite(tensor.NewRNG(seed), spec) }, nil
	case ModelMLP:
		in := spec.Channels * spec.Height * spec.Width
		return func() *nn.Sequential {
			g := tensor.NewRNG(seed)
			return nn.NewSequential(
				nn.NewFlatten(),
				nn.NewDense(g, in, 48), nn.NewReLU(),
				nn.NewDense(g, 48, spec.Classes),
			)
		}, nil
	default:
		return nil, fmt.Errorf("fedmigr: unknown model %q", o.Model)
	}
}

func buildMigrator(o Options, topo *edgenet.Topology) (core.Migrator, error) {
	if o.Scheme != SchemeRandMigr && o.Scheme != SchemeFedMigr {
		return nil, nil
	}
	switch o.Migrator {
	case MigratorRandom:
		return core.NewRandomMigrator(o.Seed + 21), nil
	case MigratorGreedyEMD:
		return &core.GreedyEMDMigrator{CostWeight: 0.1}, nil
	case MigratorOptimal:
		return &core.OptimalAssignmentMigrator{CostWeight: 0.1}, nil
	case MigratorCrossLAN:
		return core.NewCrossLANMigrator(topo, o.Seed+21), nil
	case MigratorWithinLAN:
		return core.NewWithinLANMigrator(topo, o.Seed+21), nil
	case MigratorStay:
		return core.StayMigrator{}, nil
	case MigratorDRL:
		cfg := drl.MigratorConfig{K: o.Clients, Seed: o.Seed + 31}
		if o.DRL != nil {
			cfg = *o.DRL
			cfg.K = o.Clients
		}
		return drl.NewMigrator(cfg), nil
	default:
		return nil, fmt.Errorf("fedmigr: unknown migrator %q", o.Migrator)
	}
}

func buildPrivacy(o Options) (*privacy.Mechanism, error) {
	if o.PrivacyEpsilon <= 0 || math.IsInf(o.PrivacyEpsilon, 1) {
		return nil, nil
	}
	delta := o.PrivacyDelta
	if delta == 0 {
		delta = 1e-5
	}
	clip := o.PrivacyClip
	if clip == 0 {
		clip = 10
	}
	return privacy.NewMechanism(o.PrivacyEpsilon, delta, clip, o.Seed+41)
}

// Pretrain warms a DRL migrator offline on cheap simulated episodes before
// deployment, as the paper does ("the training of DRL agent can be
// performed offline in the simulation environment"). It runs `episodes`
// short FedMigr simulations sharing the agent, then freezes nothing — the
// caller decides whether to set Frozen.
func Pretrain(m *drl.Migrator, base Options, episodes, epochsPer int) error {
	for ep := 0; ep < episodes; ep++ {
		o := base.withDefaults()
		o.Scheme = SchemeFedMigr
		o.Epochs = epochsPer
		o.Seed = base.Seed + int64(1000+ep)
		sim, err := New(o)
		if err != nil {
			return err
		}
		sim.Migrator = m
		// Rebuild the trainer with the shared migrator.
		tr, err := core.NewTrainer(core.Config{
			Scheme: SchemeFedMigr, AggEvery: o.AggEvery, Tau: o.Tau,
			BatchSize: o.BatchSize, LR: o.LR, MaxEpochs: epochsPer, Seed: o.Seed,
		}, sim.Clients, sim.Topology, sim.Cost, sim.Test, factoryOf(sim), m)
		if err != nil {
			return err
		}
		tr.Run()
	}
	return nil
}

func factoryOf(s *Simulation) core.ModelFactory {
	f, err := buildFactory(s.Options, specOf(s))
	if err != nil {
		panic(err)
	}
	return f
}

func specOf(s *Simulation) nn.ModelSpec {
	c, h, w := s.Test.Spec()
	return nn.ModelSpec{Channels: c, Height: h, Width: w, Classes: s.Test.Classes}
}
