package fedmigr

import (
	"crypto/sha256"
	"runtime"
	"testing"
)

// streamOpts is the shared shape of the parity runs: 16 clients so a
// fan-out of 16 degenerates to one client per simulated aggregator, the
// FedMigr scheme with the greedy migrator so models change hosts between
// rounds (the case that historically broke sibling alignment), and two
// aggregation rounds.
func streamOpts() Options {
	return Options{
		Scheme:    SchemeFedMigr,
		Migrator:  MigratorGreedyEMD,
		Model:     ModelMLP,
		Clients:   16,
		LANs:      4,
		PerClass:  8,
		Epochs:    4,
		AggEvery:  2,
		BatchSize: 8,
		EvalEvery: 2,
		Seed:      7,
	}
}

func runDigest(t *testing.T, o Options) [32]byte {
	t.Helper()
	sim, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	sim.Run()
	b, err := sim.Trainer.GlobalModel().MarshalParams()
	if err != nil {
		t.Fatal(err)
	}
	return sha256.Sum256(b)
}

// TestStreamingAggregationParity is the tentpole's end-to-end proof: the
// streaming accumulator produces bit-identical global parameters to the
// buffered baseline for every worker count and edge-aggregator fan-out.
// The reduction tree's shape is fixed by the slot set alone, so WHERE the
// partial sums are computed (flat, or grouped onto 1/4/16 simulated
// aggregators) and HOW leaves are materialized (all at once, or streamed)
// must never leak into the float64 result.
func TestStreamingAggregationParity(t *testing.T) {
	base := streamOpts()
	base.BufferedAgg = true
	base.Workers = 1
	want := runDigest(t, base)

	for _, workers := range []int{1, 8} {
		for _, fanout := range []int{1, 4, 16} {
			o := streamOpts()
			o.Workers = workers
			o.Aggregators = fanout
			if got := runDigest(t, o); got != want {
				t.Fatalf("workers=%d aggregators=%d: streaming model diverges from buffered baseline", workers, fanout)
			}
		}
	}
}

// TestStreamingCohortParity extends the parity claim to cohort mode:
// sampling 8 of 16 clients per round with lazy hydration must pick the
// same cohorts (seeded, round-derived) and fold their uploads to the same
// bits whether the reduction is buffered or streamed through a fan-out.
func TestStreamingCohortParity(t *testing.T) {
	cohortOpts := func() Options {
		o := streamOpts()
		o.Scheme = SchemeFedAvg
		o.CohortSize = 8
		return o
	}
	base := cohortOpts()
	base.BufferedAgg = true
	base.Workers = 1
	want := runDigest(t, base)

	for _, fanout := range []int{1, 4, 16} {
		o := cohortOpts()
		o.Workers = 8
		o.Aggregators = fanout
		if got := runDigest(t, o); got != want {
			t.Fatalf("aggregators=%d: cohort streaming model diverges from buffered baseline", fanout)
		}
	}
}

// Test100kClientStreamingSmoke runs a 100 000-client federated round for
// real — no mocked trainer — and asserts the three O(1)-memory claims
// hold together: replicated partitioning keeps dataset memory at the pool
// size, cohort sampling keeps at most CohortSize replicas hydrated, and
// the streaming fold never materializes more than the reduction frontier.
// The post-GC heap ceiling is the regression tripwire: the buffered path
// at this scale would need ~100k × model-size of leaf scratch and blow
// straight through it.
func Test100kClientStreamingSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-client smoke skipped in -short mode")
	}
	const (
		k      = 100_000
		cohort = 64
	)
	sim, err := New(Options{
		Scheme:        SchemeFedAvg,
		Model:         ModelMLP,
		Partition:     PartitionReplicate,
		ReplicaShards: 64,
		Clients:       k,
		LANs:          16,
		PerClass:      32,
		Epochs:        3,
		AggEvery:      1,
		BatchSize:     8,
		EvalEvery:     2,
		CohortSize:    cohort,
		Aggregators:   16,
		Seed:          3,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Run()
	if res.Rounds != 2 {
		t.Fatalf("smoke run finished %d rounds, want 2", res.Rounds)
	}
	if got := sim.Trainer.MaxHydrated(); got != cohort {
		t.Fatalf("peak hydrated replicas = %d, want exactly the cohort size %d", got, cohort)
	}

	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	const ceiling = 256 << 20
	if ms.HeapAlloc > ceiling {
		t.Fatalf("post-run heap %.1f MB exceeds the %d MB ceiling: memory is not independent of the client count",
			float64(ms.HeapAlloc)/(1<<20), ceiling>>20)
	}
	t.Logf("100k clients: heap=%.1fMB max_hydrated=%d final_acc=%.3f",
		float64(ms.HeapAlloc)/(1<<20), sim.Trainer.MaxHydrated(), res.FinalAcc)
}
