package fedmigr

import (
	"fedmigr/internal/core"
	"fedmigr/internal/data"
	"fedmigr/internal/edgenet"
)

// AnalyticOptions configures the one-shot analytic baseline (FedHENet
// style): a frozen seeded random-feature extractor — regenerated from the
// seed on every client, so it costs zero transfer — plus a closed-form
// ridge-regression head solved exactly in ONE aggregation round from
// per-client Gram/moment statistics. The baseline every iterative scheme's
// communication bill is compared against.
type AnalyticOptions struct {
	// Features is the random-feature width of the frozen extractor
	// (default 64). Upload cost per client is 8·((F+1)² + (F+1)·classes)
	// bytes, independent of the client's sample count.
	Features int
	// Ridge is the regularizer λ of the closed-form solve (default 1e-3).
	Ridge float64

	// Options supplies the shared substrate: dataset, partition, Clients,
	// LANs, Cost, Workers, Telemetry, Seed. Scheme, migration and SGD
	// hyper-parameters are ignored — there is no iterative phase.
	Options
}

// AnalyticSim is an assembled one-shot analytic run.
type AnalyticSim struct {
	Trainer  *core.AnalyticTrainer
	Test     *data.Dataset
	Clients  []*core.Client
	Topology *edgenet.Topology
	Cost     *edgenet.CostModel
	Options  AnalyticOptions
}

// NewAnalytic assembles the one-shot analytic simulation over the same
// dataset/partition substrate New builds, without running it.
func NewAnalytic(o AnalyticOptions) (*AnalyticSim, error) {
	o.Options = o.Options.withDefaults()
	base := o.Options

	train, test, _, err := buildDataset(base)
	if err != nil {
		return nil, err
	}
	parts, topo, err := partition(base, train)
	if err != nil {
		return nil, err
	}
	clients := make([]*core.Client, base.Clients)
	for i := range clients {
		clients[i] = &core.Client{ID: i, Data: parts[i]}
	}
	cost := base.Cost
	if cost == nil {
		cost = edgenet.DefaultCostModel()
		cost.Jitter = 0.1
		cost.Seed(base.Seed + 7)
	}
	tr, err := core.NewAnalyticTrainer(core.AnalyticConfig{
		Features: o.Features, Ridge: o.Ridge,
		Workers: base.Workers, Seed: base.Seed,
	}, clients, topo, cost, test)
	if err != nil {
		return nil, err
	}
	tr.SetTelemetry(base.Telemetry)
	return &AnalyticSim{
		Trainer: tr, Test: test, Clients: clients,
		Topology: topo, Cost: cost, Options: o,
	}, nil
}

// Run executes the single analytic round.
func (s *AnalyticSim) Run() *Result { return s.Trainer.Run() }

// Close releases the trainer's scheduler pool.
func (s *AnalyticSim) Close() { s.Trainer.Close() }

// RunAnalytic assembles and executes a one-shot analytic run in one call.
func RunAnalytic(o AnalyticOptions) (*Result, error) {
	s, err := NewAnalytic(o)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	return s.Run(), nil
}
